// Package durable is remedyd's crash-safety layer: an append-only,
// checksummed job journal (a write-ahead log) plus a disk-spill store
// for registered datasets, both rooted in one data directory.
//
// The contract the serving layer builds on is small:
//
//   - every job state transition (queued → running → done | failed |
//     cancelled) is appended to the journal *before* it is
//     acknowledged to a client, so an acknowledged job can always be
//     reconstructed;
//
//   - every registered dataset is spilled to disk (canonical CSV plus
//     a JSON sidecar of its registry identity) before the upload is
//     acknowledged, so a recovered journal never references data that
//     no longer exists;
//
//   - long identify traversals checkpoint per completed lattice level,
//     so a job interrupted by a crash resumes from its last completed
//     level instead of restarting.
//
// Recovery replays the journal front to back and reduces it to a job
// table (see Reduce). The journal format is deliberately
// corruption-tolerant in the one way crashes actually corrupt an
// append-only file: a torn or checksum-mismatched tail. Replay stops
// cleanly at the first bad frame and reports how far it got; it never
// panics and never trusts bytes past the damage.
//
// Everything here follows the repository's contracts: ctx-first
// signatures, checked errors, deterministic behavior (no ambient
// clock or entropy), and faults injection points
// (durable.journal.append, durable.recover.record) at the boundaries
// where real deployments fail.
package durable

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/obs"
)

// Layout of a data directory:
//
//	<dir>/journal.wal      the job journal
//	<dir>/snapshot.snap    compaction snapshot (reduced state ≤ horizon)
//	<dir>/datasets/<id>.csv    spilled dataset (canonical WriteCSV form)
//	<dir>/datasets/<id>.json   sidecar: registry identity (DatasetMeta)
//
// The sidecar is written after the CSV and removed before it, so its
// presence is the commit marker: recovery loads only datasets whose
// sidecar exists and ignores orphaned CSVs from interrupted spills.
const (
	journalName = "journal.wal"
	datasetsDir = "datasets"
)

// ErrBadDatasetID rejects dataset IDs that are not safe as file names.
var ErrBadDatasetID = errors.New("durable: dataset id is not a safe file name")

// Store is one data directory: the journal plus the dataset spill
// area. A nil *Store is the documented in-memory mode: the serving
// layer checks for nil before every durability call, so an
// unconfigured -data-dir adds no work to the request path.
type Store struct {
	dir     string
	journal *Journal

	// Compaction state (snapshot.go): the installed policy plus the
	// newest known snapshot horizon and its content address.
	compactMu   sync.Mutex
	policy      CompactionPolicy
	lastSnapSeq uint64
	lastSnapID  string
}

// Open creates (or reopens) the data directory at dir and opens its
// journal for appending. syncEach selects fsync-per-append (see
// OpenJournal).
func Open(ctx context.Context, dir string, syncEach bool) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, datasetsDir), 0o777); err != nil {
		return nil, fmt.Errorf("durable: create data dir: %w", err)
	}
	j, err := OpenJournal(ctx, filepath.Join(dir, journalName), syncEach)
	if err != nil {
		return nil, err
	}
	return &Store{dir: dir, journal: j}, nil
}

// Dir returns the data directory root.
func (s *Store) Dir() string { return s.dir }

// Journal returns the store's job journal.
func (s *Store) Journal() *Journal { return s.journal }

// Close closes the journal. The spill area needs no teardown.
func (s *Store) Close() error { return s.journal.Close() }

// DatasetMeta is the sidecar identity of one spilled dataset — enough
// to re-admit it into the registry under its original content-derived
// ID after a restart.
type DatasetMeta struct {
	ID        string   `json:"id"`
	Name      string   `json:"name,omitempty"`
	Target    string   `json:"target"`
	Protected []string `json:"protected"`
	// Bytes preserves the upload's byte count for the restored
	// registry info (0 for server-produced datasets, as at admission).
	Bytes int64 `json:"bytes,omitempty"`
}

// SpilledDataset pairs a recovered sidecar with the path of its CSV.
type SpilledDataset struct {
	Meta    DatasetMeta
	CSVPath string
}

// safeID reports whether id can be embedded in a file name without
// escaping the datasets directory.
func safeID(id string) bool {
	if id == "" || id == "." || id == ".." {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-' || r == '_' || r == '.':
		default:
			return false
		}
	}
	return true
}

func (s *Store) datasetPaths(id string) (csvPath, metaPath string) {
	base := filepath.Join(s.dir, datasetsDir, id)
	return base + ".csv", base + ".json"
}

// SpillDataset persists one dataset: write writes the canonical CSV
// body. Both files go through a temp-file rename so a crash mid-spill
// leaves either a complete dataset or an ignorable orphan, never a
// half-written one that recovery would trust.
func (s *Store) SpillDataset(ctx context.Context, meta DatasetMeta, write func(io.Writer) error) error {
	if !safeID(meta.ID) {
		return fmt.Errorf("%w: %q", ErrBadDatasetID, meta.ID)
	}
	csvPath, metaPath := s.datasetPaths(meta.ID)
	if _, err := os.Stat(metaPath); err == nil {
		// Content-addressed IDs make re-spilling the same dataset a
		// no-op: the bytes on disk are already the canonical form.
		return nil
	}
	if err := writeFileAtomic(csvPath, write); err != nil {
		return fmt.Errorf("durable: spill dataset %s: %w", meta.ID, err)
	}
	side, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("durable: spill dataset %s: %w", meta.ID, err)
	}
	err = writeFileAtomic(metaPath, func(w io.Writer) error {
		_, werr := w.Write(side)
		return werr
	})
	if err != nil {
		return fmt.Errorf("durable: spill dataset %s: %w", meta.ID, err)
	}
	m := obs.MetricsFrom(ctx)
	m.Counter("durable.datasets_spilled").Inc()
	if lg := obs.LoggerFrom(ctx); lg.On(obs.LevelDebug) {
		lg.Scope("durable").Debug("dataset spilled", "id", meta.ID, "path", csvPath)
	}
	return nil
}

// RemoveDataset deletes a spilled dataset (registry eviction or an
// explicit DELETE). The sidecar goes first so an interrupted removal
// degrades to an orphaned CSV, which recovery ignores. Removing a
// dataset that was never spilled is a no-op.
func (s *Store) RemoveDataset(ctx context.Context, id string) error {
	if !safeID(id) {
		return fmt.Errorf("%w: %q", ErrBadDatasetID, id)
	}
	csvPath, metaPath := s.datasetPaths(id)
	if err := os.Remove(metaPath); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("durable: remove dataset %s: %w", id, err)
	}
	if err := os.Remove(csvPath); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("durable: remove dataset %s: %w", id, err)
	}
	obs.MetricsFrom(ctx).Counter("durable.datasets_removed").Inc()
	return nil
}

// LoadDataset returns one committed spilled dataset by ID, or
// os.ErrNotExist if it was never spilled (or its spill never
// committed). It is the single-dataset read behind the cluster's
// fetch-on-miss dataset transfer: the spill file is the transfer
// format, streamed as-is.
func (s *Store) LoadDataset(_ context.Context, id string) (SpilledDataset, error) {
	if !safeID(id) {
		return SpilledDataset{}, fmt.Errorf("%w: %q", ErrBadDatasetID, id)
	}
	csvPath, metaPath := s.datasetPaths(id)
	raw, err := os.ReadFile(metaPath)
	if err != nil {
		return SpilledDataset{}, fmt.Errorf("durable: load dataset %s: %w", id, err)
	}
	var meta DatasetMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return SpilledDataset{}, fmt.Errorf("durable: load dataset %s: malformed sidecar: %w", id, err)
	}
	if _, err := os.Stat(csvPath); err != nil {
		return SpilledDataset{}, fmt.Errorf("durable: load dataset %s: %w", id, err)
	}
	return SpilledDataset{Meta: meta, CSVPath: csvPath}, nil
}

// LoadDatasets returns every committed spilled dataset, sorted by ID
// for a deterministic recovery order. Orphaned CSVs (no sidecar) and
// unreadable sidecars are skipped, not fatal: recovery restores what
// it can prove complete.
func (s *Store) LoadDatasets(ctx context.Context) ([]SpilledDataset, error) {
	dir := filepath.Join(s.dir, datasetsDir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: list datasets: %w", err)
	}
	lg := obs.LoggerFrom(ctx).Scope("durable")
	var out []SpilledDataset
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".json" {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			lg.Warn("skipping unreadable dataset sidecar", "file", name, "err", err)
			continue
		}
		var meta DatasetMeta
		if err := json.Unmarshal(raw, &meta); err != nil || !safeID(meta.ID) {
			lg.Warn("skipping malformed dataset sidecar", "file", name, "err", err)
			continue
		}
		csvPath, _ := s.datasetPaths(meta.ID)
		if _, err := os.Stat(csvPath); err != nil {
			lg.Warn("skipping dataset with missing CSV", "id", meta.ID, "err", err)
			continue
		}
		out = append(out, SpilledDataset{Meta: meta, CSVPath: csvPath})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Meta.ID < out[j].Meta.ID })
	obs.MetricsFrom(ctx).Counter("durable.datasets_restored").Add(int64(len(out)))
	return out, nil
}

// writeFileAtomic writes via a temp file in the target's directory and
// renames it into place, so the destination is never observable
// half-written.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		_ = tmp.Close()        //lint:allow errdiscard error-path cleanup; the primary error is already being returned
		_ = os.Remove(tmpName) //lint:allow errdiscard error-path cleanup of the temp file
	}
	if err := write(tmp); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		cleanup()
		return err
	}
	return nil
}
