package durable

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faults"
)

func testJournalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "journal.wal")
}

func appendAll(t *testing.T, j *Journal, recs []Record) {
	t.Helper()
	ctx := context.Background()
	for i, rec := range recs {
		if err := j.Append(ctx, rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func replayAll(t *testing.T, path string) ([]Record, ReplayInfo) {
	t.Helper()
	var got []Record
	info, err := ReplayJournal(context.Background(), path, func(rec Record) error {
		got = append(got, rec)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, info
}

func sampleRecords() []Record {
	req := json.RawMessage(`{"kind":"identify","dataset":"ds-1"}`)
	return []Record{
		{Type: RecSubmit, JobID: "job-000001", IdemKey: "k1", Request: req},
		{Type: RecState, JobID: "job-000001", State: StateRunning},
		{Type: RecCheckpoint, JobID: "job-000001", Level: 3, Checkpoint: json.RawMessage(`{"level":3}`)},
		{Type: RecState, JobID: "job-000001", State: StateDone},
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := testJournalPath(t)
	j, err := OpenJournal(context.Background(), path, false)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	appendAll(t, j, want)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got, info := replayAll(t, path)
	if info.Torn {
		t.Fatalf("unexpected torn tail: %s", info.Reason)
	}
	if info.Records != len(want) || len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		w, _ := json.Marshal(want[i])
		g, _ := json.Marshal(got[i])
		if string(w) != string(g) {
			t.Errorf("record %d: got %s want %s", i, g, w)
		}
	}
}

func TestJournalReopenAppends(t *testing.T) {
	path := testJournalPath(t)
	ctx := context.Background()
	j1, err := OpenJournal(ctx, path, false)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j1, sampleRecords()[:2])
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(ctx, path, true)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	appendAll(t, j2, sampleRecords()[2:])
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	got, info := replayAll(t, path)
	if info.Torn || len(got) != 4 {
		t.Fatalf("got %d records (torn=%v %s), want 4 clean", len(got), info.Torn, info.Reason)
	}
}

func TestJournalAppendAfterClose(t *testing.T) {
	j, err := OpenJournal(context.Background(), testJournalPath(t), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	err = j.Append(context.Background(), Record{Type: RecState, JobID: "job-000001", State: StateDone})
	if !errors.Is(err, ErrJournalClosed) {
		t.Fatalf("append after close: %v, want ErrJournalClosed", err)
	}
}

func TestJournalMissingFileReplaysEmpty(t *testing.T) {
	got, info := replayAll(t, filepath.Join(t.TempDir(), "absent.wal"))
	if len(got) != 0 || info.Torn || info.Records != 0 {
		t.Fatalf("missing file: got %d records, info %+v", len(got), info)
	}
}

func TestJournalBadHeaderRejected(t *testing.T) {
	path := testJournalPath(t)
	if err := os.WriteFile(path, []byte("not a journal at all\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(context.Background(), path, false); err == nil {
		t.Fatal("OpenJournal accepted a non-journal file")
	}
	_, err := ReplayJournal(context.Background(), path, func(Record) error { return nil })
	if err == nil {
		t.Fatal("ReplayJournal accepted a non-journal file")
	}
}

// writeJournal writes a complete journal then applies mutate to its
// bytes, returning the path — the crash/corruption test helper.
func writeJournal(t *testing.T, recs []Record, mutate func([]byte) []byte) string {
	t.Helper()
	path := testJournalPath(t)
	j, err := OpenJournal(context.Background(), path, false)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, recs)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(raw), 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestJournalTruncatedTail(t *testing.T) {
	recs := sampleRecords()
	// Chop off the last 3 bytes: the final record's payload is torn.
	path := writeJournal(t, recs, func(b []byte) []byte { return b[:len(b)-3] })
	got, info := replayAll(t, path)
	if !info.Torn {
		t.Fatal("truncated journal not reported as torn")
	}
	if len(got) != len(recs)-1 {
		t.Fatalf("got %d records, want %d (all but the torn one)", len(got), len(recs)-1)
	}
}

func TestJournalTruncatedMidHeader(t *testing.T) {
	recs := sampleRecords()
	// Leave the magic plus 5 bytes: a torn frame header.
	path := writeJournal(t, recs, func(b []byte) []byte { return b[:len(journalMagic)+5] })
	got, info := replayAll(t, path)
	if !info.Torn || len(got) != 0 {
		t.Fatalf("got %d records (torn=%v), want 0 torn", len(got), info.Torn)
	}
}

func TestJournalCorruptedChecksum(t *testing.T) {
	recs := sampleRecords()
	// Flip one payload byte of the second record; replay must stop
	// before it and never deliver the records behind the damage.
	path := writeJournal(t, recs, func(b []byte) []byte {
		off := len(journalMagic)
		n := binary.LittleEndian.Uint32(b[off : off+4])
		off += frameHeaderLen + int(n) // start of record 2's frame
		b[off+frameHeaderLen] ^= 0xFF
		return b
	})
	got, info := replayAll(t, path)
	if !info.Torn || info.Reason != "checksum mismatch" {
		t.Fatalf("info = %+v, want checksum mismatch", info)
	}
	if len(got) != 1 {
		t.Fatalf("got %d records, want 1 (damage must hide everything behind it)", len(got))
	}
}

func TestJournalOversizedFrameRejected(t *testing.T) {
	path := writeJournal(t, sampleRecords()[:1], func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[len(journalMagic):], maxRecordLen+1)
		return b
	})
	got, info := replayAll(t, path)
	if !info.Torn || len(got) != 0 {
		t.Fatalf("oversized frame: got %d records (torn=%v)", len(got), info.Torn)
	}
}

func TestJournalAppendFault(t *testing.T) {
	j, err := OpenJournal(context.Background(), testJournalPath(t), false)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close() //lint:allow errdiscard test cleanup
	boom := errors.New("disk full")
	calls := 0
	faults.Set(faults.JournalAppend, func(arg any) error {
		calls++
		if _, ok := arg.(Record); !ok {
			t.Errorf("hook arg = %T, want Record", arg)
		}
		return boom
	})
	t.Cleanup(func() { faults.Clear(faults.JournalAppend) })
	err = j.Append(context.Background(), Record{Type: RecState, JobID: "job-000001", State: StateDone})
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("append = %v (calls=%d), want injected failure", err, calls)
	}
	// The failed append must leave no partial frame behind.
	got, info := replayAll(t, j.Path())
	if len(got) != 0 || info.Torn {
		t.Fatalf("journal not empty after injected failure: %d records torn=%v", len(got), info.Torn)
	}
}

func TestJournalRecoverRecordFault(t *testing.T) {
	path := testJournalPath(t)
	j, err := OpenJournal(context.Background(), path, false)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, sampleRecords())
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("bad sector")
	seen := 0
	faults.Set(faults.RecoverRecord, func(any) error {
		seen++
		if seen == 2 {
			return boom
		}
		return nil
	})
	t.Cleanup(func() { faults.Clear(faults.RecoverRecord) })
	_, err = ReplayJournal(context.Background(), path, func(Record) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("replay = %v, want injected failure", err)
	}
}

// TestJournalFrameFormat pins the on-disk framing so accidental format
// changes fail loudly: magic header, then LE length + LE CRC32(IEEE).
func TestJournalFrameFormat(t *testing.T) {
	rec := Record{Type: RecState, JobID: "job-000007", State: StateRunning}
	path := testJournalPath(t)
	j, err := OpenJournal(context.Background(), path, false)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, []Record{rec})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw[:len(journalMagic)]) != string(journalMagic) {
		t.Fatalf("journal does not start with magic %q", journalMagic)
	}
	payload, _ := json.Marshal(rec)
	frame := raw[len(journalMagic):]
	if got := binary.LittleEndian.Uint32(frame[0:4]); got != uint32(len(payload)) {
		t.Errorf("frame length = %d, want %d", got, len(payload))
	}
	if got := binary.LittleEndian.Uint32(frame[4:8]); got != crc32.ChecksumIEEE(payload) {
		t.Errorf("frame checksum = %#x, want %#x", got, crc32.ChecksumIEEE(payload))
	}
	if string(frame[frameHeaderLen:]) != string(payload) {
		t.Errorf("frame payload = %s, want %s", frame[frameHeaderLen:], payload)
	}
}

func TestJournalReplayDeterministic(t *testing.T) {
	recs := sampleRecords()
	for i := 0; i < 20; i++ {
		recs = append(recs, Record{
			Type: RecState, JobID: fmt.Sprintf("job-%06d", i), State: StateRunning,
		})
	}
	path := writeJournal(t, recs, func(b []byte) []byte { return b })
	first, _ := replayAll(t, path)
	for i := 0; i < 3; i++ {
		again, _ := replayAll(t, path)
		w, _ := json.Marshal(first)
		g, _ := json.Marshal(again)
		if string(w) != string(g) {
			t.Fatalf("replay %d differed from first replay", i)
		}
	}
}
