package durable

import (
	"context"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func TestReduceHappyPath(t *testing.T) {
	req := json.RawMessage(`{"kind":"identify"}`)
	tbl := Reduce([]Record{
		{Type: RecSubmit, JobID: "job-000001", IdemKey: "k1", Request: req},
		{Type: RecState, JobID: "job-000001", State: StateRunning},
		{Type: RecCheckpoint, JobID: "job-000001", Level: 4, Checkpoint: json.RawMessage(`{"l":4}`)},
		{Type: RecCheckpoint, JobID: "job-000001", Level: 3, Checkpoint: json.RawMessage(`{"l":3}`)},
		{Type: RecState, JobID: "job-000001", State: StateDone},
		{Type: RecSubmit, JobID: "job-000002", Request: req},
	})
	if len(tbl.Jobs) != 2 || tbl.Dropped != 0 {
		t.Fatalf("jobs=%d dropped=%d, want 2/0", len(tbl.Jobs), tbl.Dropped)
	}
	j1 := tbl.Jobs[0]
	if j1.ID != "job-000001" || j1.State != StateDone || j1.IdemKey != "k1" {
		t.Fatalf("job1 = %+v", j1)
	}
	if lv := j1.CheckpointLevels(); len(lv) != 2 || lv[0] != 3 || lv[1] != 4 {
		t.Fatalf("checkpoint levels = %v, want [3 4]", lv)
	}
	if tbl.Jobs[1].State != StateQueued {
		t.Fatalf("job2 state = %s, want queued", tbl.Jobs[1].State)
	}
	if tbl.MaxJobSeq != 2 {
		t.Fatalf("MaxJobSeq = %d, want 2", tbl.MaxJobSeq)
	}
}

func TestReduceDuplicateSubmit(t *testing.T) {
	tbl := Reduce([]Record{
		{Type: RecSubmit, JobID: "job-000001", IdemKey: "first"},
		{Type: RecSubmit, JobID: "job-000001", IdemKey: "second"},
	})
	if len(tbl.Jobs) != 1 || tbl.Jobs[0].IdemKey != "first" || tbl.Dropped != 1 {
		t.Fatalf("table = %+v, want first submit to win", tbl)
	}
}

func TestReduceDuplicateTerminalTransition(t *testing.T) {
	// A crash between the "done" append and its acknowledgment can make
	// a recovered engine re-finish the job; the duplicate terminal
	// transition must not flip the outcome.
	tbl := Reduce([]Record{
		{Type: RecSubmit, JobID: "job-000001"},
		{Type: RecState, JobID: "job-000001", State: StateDone},
		{Type: RecState, JobID: "job-000001", State: StateFailed, Error: "late duplicate"},
	})
	j := tbl.Jobs[0]
	if j.State != StateDone || j.Error != "" || tbl.Dropped != 1 {
		t.Fatalf("job = %+v dropped=%d, want done to stick", j, tbl.Dropped)
	}
}

func TestReduceOrphanRecordsDropped(t *testing.T) {
	tbl := Reduce([]Record{
		{Type: RecState, JobID: "job-000009", State: StateRunning},
		{Type: RecCheckpoint, JobID: "job-000009", Level: 1, Checkpoint: json.RawMessage(`{}`)},
		{Type: RecState, JobID: "", State: StateDone},
		{Type: RecordType("mystery"), JobID: "job-000009"},
	})
	if len(tbl.Jobs) != 0 || tbl.Dropped != 4 {
		t.Fatalf("jobs=%d dropped=%d, want 0/4", len(tbl.Jobs), tbl.Dropped)
	}
}

func TestReduceAttemptMonotonic(t *testing.T) {
	tbl := Reduce([]Record{
		{Type: RecSubmit, JobID: "job-000001"},
		{Type: RecState, JobID: "job-000001", State: StateRunning},
		{Type: RecState, JobID: "job-000001", State: StateInterrupted, Attempt: 1},
		{Type: RecState, JobID: "job-000001", State: StateQueued, Attempt: 1},
		{Type: RecState, JobID: "job-000001", State: StateRunning},
	})
	j := tbl.Jobs[0]
	if j.State != StateRunning || j.Attempt != 1 {
		t.Fatalf("job = %+v, want running at attempt 1", j)
	}
}

func TestReduceMaxJobSeqIgnoresForeignIDs(t *testing.T) {
	tbl := Reduce([]Record{
		{Type: RecSubmit, JobID: "job-000041"},
		{Type: RecSubmit, JobID: "custom-99"},
		{Type: RecSubmit, JobID: "job-notanumber"},
		{Type: RecSubmit, JobID: "job-000007"},
	})
	if tbl.MaxJobSeq != 41 {
		t.Fatalf("MaxJobSeq = %d, want 41", tbl.MaxJobSeq)
	}
	if len(tbl.Jobs) != 4 {
		t.Fatalf("jobs = %d, want 4", len(tbl.Jobs))
	}
}

func TestStoreRecoverEndToEnd(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s, err := Open(ctx, dir, false)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Type: RecSubmit, JobID: "job-000001", Request: json.RawMessage(`{"kind":"identify"}`)},
		{Type: RecState, JobID: "job-000001", State: StateRunning},
		{Type: RecCheckpoint, JobID: "job-000001", Level: 2, Checkpoint: json.RawMessage(`{"l":2}`)},
	}
	for _, rec := range recs {
		if err := s.Journal().Append(ctx, rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A second Open against the same directory sees the same journal.
	s2, err := Open(ctx, dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close() //lint:allow errdiscard test cleanup
	tbl, err := s2.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Jobs) != 1 || tbl.Jobs[0].State != StateRunning {
		t.Fatalf("recovered table = %+v", tbl)
	}
	if len(tbl.Jobs[0].Checkpoints) != 1 {
		t.Fatalf("checkpoints = %v, want level 2 only", tbl.Jobs[0].Checkpoints)
	}
}

func TestStoreSpillLoadRemove(t *testing.T) {
	ctx := context.Background()
	s, err := Open(ctx, t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //lint:allow errdiscard test cleanup

	meta := DatasetMeta{ID: "ds-abc123", Name: "adult", Target: "income", Protected: []string{"race", "sex"}, Bytes: 11}
	if err := s.SpillDataset(ctx, meta, func(w io.Writer) error {
		_, werr := w.Write([]byte("a,b\n1,2\n"))
		return werr
	}); err != nil {
		t.Fatal(err)
	}
	// Re-spilling the same ID is an idempotent no-op.
	if err := s.SpillDataset(ctx, meta, func(io.Writer) error {
		t.Error("re-spill invoked the writer")
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	got, err := s.LoadDatasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Meta.ID != meta.ID || got[0].Meta.Target != "income" {
		t.Fatalf("loaded = %+v", got)
	}

	if err := s.RemoveDataset(ctx, meta.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveDataset(ctx, meta.ID); err != nil {
		t.Fatalf("double remove: %v", err)
	}
	got, err = s.LoadDatasets(ctx)
	if err != nil || len(got) != 0 {
		t.Fatalf("after remove: %d datasets, err=%v", len(got), err)
	}
}

func TestStoreRejectsUnsafeIDs(t *testing.T) {
	ctx := context.Background()
	s, err := Open(ctx, t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //lint:allow errdiscard test cleanup
	for _, id := range []string{"", ".", "..", "../escape", "a/b", "a\\b", "a b"} {
		err := s.SpillDataset(ctx, DatasetMeta{ID: id}, func(io.Writer) error { return nil })
		if err == nil || !strings.Contains(err.Error(), "safe file name") {
			t.Errorf("SpillDataset(%q) = %v, want ErrBadDatasetID", id, err)
		}
		if err := s.RemoveDataset(ctx, id); err == nil {
			t.Errorf("RemoveDataset(%q) accepted an unsafe id", id)
		}
	}
}
