package durable

// This file is snapshot-based log compaction. A snapshot freezes the
// reduced journal state — per-job verdicts and checkpoints, the
// leadership term history, dataset references — at an absolute
// sequence (the horizon), in one atomically-written, CRC-framed,
// content-addressed file. Once a snapshot commits, the journal prefix
// it covers is redundant and can be truncated (Journal.CompactTo);
// recovery then loads snapshot-then-tail, and replication catches a
// follower that is behind the horizon up by installing the snapshot
// file wholesale instead of backfilling records that no longer exist.
//
// The write order is always snapshot-first, truncate-second. A crash
// between the two leaves a snapshot that overlaps the journal, which
// ReduceFrom resolves by skipping tail records below the snapshot's
// horizon and Recover repairs by finishing the interrupted truncation.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/obs"
)

// snapshotName is the snapshot file inside a data directory; like the
// journal, there is exactly one, replaced atomically on every write.
const snapshotName = "snapshot.snap"

// snapshotMagic opens a snapshot file; one journal-style CRC frame
// ([uint32 LE len][uint32 LE CRC][payload JSON]) follows.
var snapshotMagic = []byte("remedySNAP1\n")

// ErrSnapshotTorn reports a snapshot file that cannot be trusted:
// short file, bad magic, checksum mismatch, or undecodable payload.
// Whether that is fatal is the caller's call — it is when the journal
// has been compacted (the folded prefix exists nowhere else), and
// ignorable when the journal is still complete from record zero.
var ErrSnapshotTorn = errors.New("durable: snapshot torn or corrupt")

// TermStart marks where one leadership term begins in the replicated
// log: the first record of term Term sits at absolute sequence Seq.
// The cluster exchanges the full term-start history on every
// replication request for fork detection; the snapshot carries the
// history so it survives compaction of the RecTerm records themselves.
type TermStart struct {
	Term   uint64 `json:"term"`
	Leader string `json:"leader"`
	Seq    uint64 `json:"seq"`
}

// Snapshot is the reduced journal state at a compaction horizon:
// everything records [0, BaseSeq) prove.
type Snapshot struct {
	// BaseSeq is the horizon: the absolute sequence the journal tail
	// resumes at. Records [0, BaseSeq) are folded in here.
	BaseSeq uint64 `json:"base_seq"`
	// Term and Leader are the last leadership term the folded prefix
	// witnessed; TermStarts is its full term-start history.
	Term       uint64      `json:"term,omitempty"`
	Leader     string      `json:"leader,omitempty"`
	TermStarts []TermStart `json:"term_starts,omitempty"`
	// Jobs is the reduced job table in submission order; MaxJobSeq and
	// Dropped mirror the Table fields for the folded prefix.
	Jobs      []*JobRecord `json:"jobs,omitempty"`
	MaxJobSeq int          `json:"max_job_seq,omitempty"`
	Dropped   int          `json:"dropped,omitempty"`
	// Datasets lists the dataset IDs the folded jobs reference, sorted.
	// Informational — recovery re-lists the spill directory — but it
	// makes a snapshot a self-describing audit artifact.
	Datasets []string `json:"datasets,omitempty"`
}

// snapshotID content-addresses a snapshot payload: the address is the
// SHA-256 of the framed JSON, so the replication install path can
// verify end to end that the bytes it applied are the bytes the leader
// compacted.
func snapshotID(payload []byte) string {
	sum := sha256.Sum256(payload)
	return "snap-" + hex.EncodeToString(sum[:])
}

func (s *Store) snapshotPath() string { return filepath.Join(s.dir, snapshotName) }

// WriteSnapshot atomically replaces the store's snapshot file and
// returns the new snapshot's content address.
func (s *Store) WriteSnapshot(ctx context.Context, snap *Snapshot) (string, error) {
	payload, err := json.Marshal(snap)
	if err != nil {
		return "", fmt.Errorf("durable: write snapshot: %w", err)
	}
	id := snapshotID(payload)
	err = writeFileAtomic(s.snapshotPath(), func(w io.Writer) error {
		if _, werr := w.Write(snapshotMagic); werr != nil {
			return werr
		}
		var hdr [frameHeaderLen]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		if _, werr := w.Write(hdr[:]); werr != nil {
			return werr
		}
		_, werr := w.Write(payload)
		return werr
	})
	if err != nil {
		return "", fmt.Errorf("durable: write snapshot: %w", err)
	}
	s.noteSnapshot(snap.BaseSeq, id)
	obs.MetricsFrom(ctx).Counter("durable.snapshots_written").Inc()
	obs.LoggerFrom(ctx).Scope("durable").Info("snapshot written",
		"base", snap.BaseSeq, "jobs", len(snap.Jobs), "id", id)
	return id, nil
}

// LoadSnapshot reads the store's snapshot. A store that has never
// snapshotted returns (nil, "", nil); damage returns ErrSnapshotTorn.
func (s *Store) LoadSnapshot(_ context.Context) (*Snapshot, string, error) {
	raw, err := os.ReadFile(s.snapshotPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil, "", nil
	}
	if err != nil {
		return nil, "", fmt.Errorf("durable: load snapshot: %w", err)
	}
	return DecodeSnapshot(raw)
}

// SnapshotRaw returns the snapshot file's verbatim bytes plus its
// decoded form and content address — what the leader ships over the
// replication install path so the follower can re-verify the address
// end to end. A store that has never snapshotted returns
// os.ErrNotExist.
func (s *Store) SnapshotRaw(_ context.Context) ([]byte, string, *Snapshot, error) {
	raw, err := os.ReadFile(s.snapshotPath())
	if err != nil {
		return nil, "", nil, fmt.Errorf("durable: read snapshot: %w", err)
	}
	snap, id, err := DecodeSnapshot(raw)
	if err != nil {
		return nil, "", nil, err
	}
	return raw, id, snap, nil
}

// DecodeSnapshot validates the raw bytes of a snapshot file (magic +
// one CRC frame) and returns the snapshot plus its content address. It
// is shared by local recovery and the install path, which receives the
// file's bytes verbatim.
func DecodeSnapshot(raw []byte) (*Snapshot, string, error) {
	if len(raw) < len(snapshotMagic)+frameHeaderLen ||
		!bytes.Equal(raw[:len(snapshotMagic)], snapshotMagic) {
		return nil, "", fmt.Errorf("%w: bad header", ErrSnapshotTorn)
	}
	body := raw[len(snapshotMagic):]
	n := binary.LittleEndian.Uint32(body[0:4])
	sum := binary.LittleEndian.Uint32(body[4:8])
	if uint64(n) > maxRecordLen || uint64(len(body)-frameHeaderLen) < uint64(n) {
		return nil, "", fmt.Errorf("%w: short payload", ErrSnapshotTorn)
	}
	payload := body[frameHeaderLen : frameHeaderLen+int(n)]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, "", fmt.Errorf("%w: checksum mismatch", ErrSnapshotTorn)
	}
	var snap Snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, "", fmt.Errorf("%w: undecodable payload", ErrSnapshotTorn)
	}
	return &snap, snapshotID(payload), nil
}

// InstallSnapshot commits raw — a complete snapshot file received from
// a leader — after validating framing and (when wantID is non-empty)
// the content address, then resets the journal to the snapshot's base.
// Everything the local journal held is superseded: the leader only
// installs on a follower whose log cannot be reconciled record by
// record (behind the horizon, or forked below it).
func (s *Store) InstallSnapshot(ctx context.Context, raw []byte, wantID string) (*Snapshot, error) {
	snap, id, err := DecodeSnapshot(raw)
	if err != nil {
		return nil, err
	}
	if wantID != "" && id != wantID {
		return nil, fmt.Errorf("durable: install snapshot: content address mismatch (got %s, want %s)", id, wantID)
	}
	err = writeFileAtomic(s.snapshotPath(), func(w io.Writer) error {
		_, werr := w.Write(raw)
		return werr
	})
	if err != nil {
		return nil, fmt.Errorf("durable: install snapshot: %w", err)
	}
	if err := s.journal.ResetToBase(ctx, snap.BaseSeq); err != nil {
		return nil, err
	}
	s.noteSnapshot(snap.BaseSeq, id)
	obs.MetricsFrom(ctx).Counter("durable.snapshots_installed").Inc()
	obs.LoggerFrom(ctx).Scope("durable").Info("snapshot installed",
		"base", snap.BaseSeq, "jobs", len(snap.Jobs), "id", id)
	return snap, nil
}

// CompactionPolicy configures tick-driven snapshots via MaybeCompact.
type CompactionPolicy struct {
	// Every is the record threshold: once the journal accumulates at
	// least Every records past the last snapshot horizon, MaybeCompact
	// writes a new snapshot. Zero disables automatic snapshots.
	Every uint64
	// Truncate drops the folded journal prefix after the snapshot
	// commits. Snapshot-only mode (false) still speeds recovery and
	// rejoin but lets the file keep growing.
	Truncate bool
}

// SetCompaction installs the automatic compaction policy. Call it at
// startup, before ticking begins.
func (s *Store) SetCompaction(p CompactionPolicy) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	s.policy = p
}

// noteSnapshot records the newest known snapshot horizon (monotone).
func (s *Store) noteSnapshot(base uint64, id string) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	if base >= s.lastSnapSeq {
		s.lastSnapSeq, s.lastSnapID = base, id
	}
}

// MaybeCompact applies the compaction policy: if the journal has grown
// policy.Every records past the last snapshot horizon, fold the
// prefix into a new snapshot (and truncate it, per policy). It is the
// tick-driven entry point — cheap when below threshold — and reports
// whether a snapshot was written.
func (s *Store) MaybeCompact(ctx context.Context) (bool, error) {
	s.compactMu.Lock()
	policy, last := s.policy, s.lastSnapSeq
	s.compactMu.Unlock()
	if policy.Every == 0 {
		return false, nil
	}
	seq := s.journal.Sequence()
	if seq < last+policy.Every {
		return false, nil
	}
	if err := s.Compact(ctx, seq, policy.Truncate); err != nil {
		return false, err
	}
	return true, nil
}

// Compact folds every record below absolute sequence upTo into the
// snapshot and — when truncate is set — drops the folded prefix from
// the journal file. Snapshot-first ordering makes a crash between the
// two steps recoverable (see the package comment above).
func (s *Store) Compact(ctx context.Context, upTo uint64, truncate bool) error {
	ctx, sp := obs.StartSpan(ctx, "durable.compact")
	defer sp.End()
	base := s.journal.Base()
	snap, _, err := s.LoadSnapshot(ctx)
	if err != nil {
		if base > 0 {
			sp.SetStr("err", err.Error())
			return fmt.Errorf("durable: compact: journal base is %d but existing snapshot is unreadable: %w", base, err)
		}
		// The journal is still complete from record zero, so a damaged
		// never-needed snapshot is replaceable, not fatal.
		obs.LoggerFrom(ctx).Scope("durable").Warn("replacing unreadable snapshot", "err", err)
		snap = nil
	}
	start := base
	if snap != nil && snap.BaseSeq > start {
		start = snap.BaseSeq
	}
	if upTo > s.journal.Sequence() {
		return fmt.Errorf("durable: compact to %d: sequence is only %d", upTo, s.journal.Sequence())
	}
	if upTo > start {
		recs, err := ReadJournalRange(ctx, s.journal.Path(), start, upTo-start)
		if err != nil {
			return fmt.Errorf("durable: compact: %w", err)
		}
		if uint64(len(recs)) < upTo-start {
			return fmt.Errorf("durable: compact to %d: journal holds only %d intact records", upTo, start+uint64(len(recs)))
		}
		t := ReduceFrom(snap, start, recs)
		if _, err := s.WriteSnapshot(ctx, t.ToSnapshot(upTo)); err != nil {
			return err
		}
	}
	if truncate {
		if err := s.journal.CompactTo(ctx, upTo); err != nil {
			return err
		}
	}
	sp.SetInt("horizon", int64(upTo))
	return nil
}

// ToSnapshot freezes the reduced table as a snapshot at horizon base.
// The table must have been reduced from exactly the records [0, base).
func (t *Table) ToSnapshot(base uint64) *Snapshot {
	return &Snapshot{
		BaseSeq:    base,
		Term:       t.Term,
		Leader:     t.Leader,
		TermStarts: append([]TermStart(nil), t.TermStarts...),
		Jobs:       t.Jobs,
		MaxJobSeq:  t.MaxJobSeq,
		Dropped:    t.Dropped,
		Datasets:   datasetRefs(t.Jobs),
	}
}

// datasetRefs collects the sorted unique dataset IDs named by the
// jobs' request bodies (best-effort: requests are opaque here, but the
// serving layer's job requests carry a dataset_id field).
func datasetRefs(jobs []*JobRecord) []string {
	seen := make(map[string]bool)
	for _, j := range jobs {
		var req struct {
			DatasetID string `json:"dataset_id"`
		}
		if len(j.Request) > 0 && json.Unmarshal(j.Request, &req) == nil && req.DatasetID != "" {
			seen[req.DatasetID] = true
		}
	}
	if len(seen) == 0 {
		return nil
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// StoreStats is the compaction state surfaced in health endpoints and
// remedyctl status: how much of the log lives in the snapshot, how
// much has accumulated since, and how big the journal file is. Age is
// measured in records, not wall time — the repo's determinism contract
// extends to its health math.
type StoreStats struct {
	// SnapshotSeq is the newest snapshot horizon (0 = never
	// snapshotted); SnapshotID is its content address.
	SnapshotSeq uint64 `json:"snapshot_seq"`
	SnapshotID  string `json:"snapshot_id,omitempty"`
	// JournalBase/JournalRecords: the file's compaction base and the
	// absolute record count (snapshot-folded prefix + tail).
	JournalBase    uint64 `json:"journal_base"`
	JournalRecords uint64 `json:"journal_records"`
	JournalBytes   int64  `json:"journal_bytes"`
	// AgeRecords counts records appended since the snapshot horizon.
	AgeRecords uint64 `json:"age_records"`
}

// Stats reports the current compaction state and refreshes the
// durable.journal_bytes and durable.snapshot_age_records gauges.
func (s *Store) Stats(ctx context.Context) StoreStats {
	st := StoreStats{
		JournalBase:    s.journal.Base(),
		JournalRecords: s.journal.Sequence(),
	}
	s.compactMu.Lock()
	st.SnapshotSeq, st.SnapshotID = s.lastSnapSeq, s.lastSnapID
	s.compactMu.Unlock()
	if fi, err := os.Stat(s.journal.Path()); err == nil {
		st.JournalBytes = fi.Size()
	}
	if st.JournalRecords > st.SnapshotSeq {
		st.AgeRecords = st.JournalRecords - st.SnapshotSeq
	}
	m := obs.MetricsFrom(ctx)
	m.Gauge("durable.journal_bytes").Set(float64(st.JournalBytes))
	m.Gauge("durable.snapshot_age_records").Set(float64(st.AgeRecords))
	return st
}
