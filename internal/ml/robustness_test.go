package ml

import (
	"context"
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/synth"
)

func TestTrainCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := synth.CompasN(300, 41)
	for _, kind := range AllModels {
		clf, err := NewClassifier(kind, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := TrainCtx(ctx, d, clf); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: TrainCtx = %v, want context.Canceled", kind, err)
		}
	}
}

// TestTrainEpochFault injects a failure at a mid-training epoch for
// each context-aware learner and asserts it aborts with the injected
// error rather than returning a silently half-trained model.
func TestTrainEpochFault(t *testing.T) {
	defer faults.Reset()
	boom := errors.New("epoch checkpoint failed")
	faults.Set(faults.TrainEpoch, func(arg any) error {
		if arg.(int) == 2 {
			return boom
		}
		return nil
	})
	d := synth.CompasN(300, 43)
	for _, kind := range []ModelKind{LG, NN, RF} {
		clf, err := NewClassifier(kind, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Train(d, clf); !errors.Is(err, boom) {
			t.Fatalf("%s: Train = %v, want injected fault", kind, err)
		}
	}
}

// TestForestCancelDiscardsPartialEnsemble cancels forest training
// after a few trees and asserts no partial ensemble survives.
func TestForestCancelDiscardsPartialEnsemble(t *testing.T) {
	defer faults.Reset()
	ctx, cancel := context.WithCancel(context.Background())
	faults.Set(faults.TrainEpoch, func(arg any) error {
		if arg.(int) == 3 {
			cancel()
		}
		return nil
	})
	f := NewRandomForest(ForestParams{Trees: 10, Seed: 1})
	d := synth.CompasN(300, 45)
	enc := dataset.NewEncoding(d.Schema)
	x, y, w := enc.Encode(d)
	if err := f.FitCtx(ctx, x, y, w); !errors.Is(err, context.Canceled) {
		t.Fatalf("FitCtx = %v, want context.Canceled", err)
	}
	if f.trees != nil {
		t.Fatal("cancelled forest must discard its partial ensemble")
	}
	if p := f.PredictProba(make([]float64, enc.Width())); p != 0.5 {
		t.Fatalf("untrained forest proba = %v, want 0.5", p)
	}
}
