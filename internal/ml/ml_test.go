package ml

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// xorData builds a noiseless 2-feature XOR-ish dataset that a linear
// model cannot fit but trees and NNs can.
func xorData(n int, seed int64) (x [][]float64, y []float64) {
	r := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		a, b := float64(r.Intn(2)), float64(r.Intn(2))
		x = append(x, []float64{a, b})
		if a != b {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	return x, y
}

// linearData builds a linearly separable dataset with a noisy margin.
func linearData(n int, seed int64) (x [][]float64, y []float64) {
	r := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		a, b := r.Float64(), r.Float64()
		x = append(x, []float64{a, b})
		if a+b > 1 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	return x, y
}

func accuracy(c Classifier, x [][]float64, y []float64) float64 {
	correct := 0
	for i := range x {
		if float64(c.Predict(x[i])) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

func TestCheckTrainingInput(t *testing.T) {
	if err := checkTrainingInput(nil, nil, nil); err == nil {
		t.Fatal("empty set must error")
	}
	x := [][]float64{{1}, {2}}
	if err := checkTrainingInput(x, []float64{1}, nil); err == nil {
		t.Fatal("label length mismatch must error")
	}
	if err := checkTrainingInput(x, []float64{1, 0}, []float64{1}); err == nil {
		t.Fatal("weight length mismatch must error")
	}
	if err := checkTrainingInput([][]float64{{1}, {2, 3}}, []float64{1, 0}, nil); err == nil {
		t.Fatal("ragged matrix must error")
	}
	if err := checkTrainingInput(x, []float64{1, 0.5}, nil); err == nil {
		t.Fatal("non-binary label must error")
	}
	if err := checkTrainingInput(x, []float64{1, 0}, []float64{1, -2}); err == nil {
		t.Fatal("negative weight must error")
	}
	if err := checkTrainingInput(x, []float64{1, 0}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
}

func TestDecisionTreeLearnsXOR(t *testing.T) {
	x, y := xorData(400, 1)
	tree := NewDecisionTree(TreeParams{MaxDepth: 4})
	if err := tree.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(tree, x, y); acc < 0.99 {
		t.Fatalf("tree accuracy on XOR = %v", acc)
	}
	if tree.Depth() < 1 || tree.Depth() > 4 {
		t.Fatalf("depth = %d", tree.Depth())
	}
}

func TestDecisionTreeRespectsDepth(t *testing.T) {
	x, y := linearData(500, 2)
	tree := NewDecisionTree(TreeParams{MaxDepth: 1})
	if err := tree.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 1 {
		t.Fatalf("depth = %d, want <= 1", tree.Depth())
	}
}

func TestDecisionTreeWeighted(t *testing.T) {
	// Two conflicting copies of the same point: prediction must follow
	// the heavier one.
	x := [][]float64{{0}, {0}}
	y := []float64{1, 0}
	tree := NewDecisionTree(TreeParams{})
	if err := tree.Fit(x, y, []float64{10, 1}); err != nil {
		t.Fatal(err)
	}
	if tree.Predict([]float64{0}) != 1 {
		t.Fatal("weighted majority should win")
	}
	if err := tree.Fit(x, y, []float64{1, 10}); err != nil {
		t.Fatal(err)
	}
	if tree.Predict([]float64{0}) != 0 {
		t.Fatal("weighted majority should win (flipped)")
	}
}

func TestDecisionTreePureNodeStops(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}}
	y := []float64{1, 1, 1}
	tree := NewDecisionTree(TreeParams{})
	if err := tree.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 0 {
		t.Fatal("pure data should give a stump")
	}
	if p := tree.PredictProba([]float64{5}); p != 1 {
		t.Fatalf("proba = %v", p)
	}
}

func TestUntrainedPredictions(t *testing.T) {
	if p := NewDecisionTree(TreeParams{}).PredictProba([]float64{1}); p != 0.5 {
		t.Fatalf("untrained tree proba = %v", p)
	}
	if p := (&RandomForest{}).PredictProba([]float64{1}); p != 0.5 {
		t.Fatalf("untrained forest proba = %v", p)
	}
	if p := (&NeuralNetwork{}).PredictProba([]float64{1}); p != 0.5 {
		t.Fatalf("untrained nn proba = %v", p)
	}
	if p := (&NaiveBayes{}).ProbaRow([]int32{0}); p != 0.5 {
		t.Fatalf("untrained nb proba = %v", p)
	}
}

func TestRandomForestLearnsXOR(t *testing.T) {
	x, y := xorData(400, 3)
	f := NewRandomForest(ForestParams{Trees: 20, MaxDepth: 4, Seed: 1})
	if err := f.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(f, x, y); acc < 0.95 {
		t.Fatalf("forest accuracy on XOR = %v", acc)
	}
}

func TestRandomForestWeighted(t *testing.T) {
	// Massive weight on class-1 points shifts the bootstrap so far that
	// the forest predicts 1 nearly everywhere.
	x, y := linearData(300, 4)
	w := make([]float64, len(x))
	for i := range w {
		if y[i] == 1 {
			w[i] = 1000
		} else {
			w[i] = 0.001
		}
	}
	f := NewRandomForest(ForestParams{Trees: 10, MaxDepth: 3, Seed: 2})
	if err := f.Fit(x, y, w); err != nil {
		t.Fatal(err)
	}
	pos := 0
	for i := range x {
		pos += f.Predict(x[i])
	}
	if float64(pos)/float64(len(x)) < 0.9 {
		t.Fatalf("weighted forest positive rate %v, want > 0.9", float64(pos)/float64(len(x)))
	}
}

func TestLogisticRegressionLearnsLinear(t *testing.T) {
	x, y := linearData(600, 5)
	lg := NewLogisticRegression(LogRegParams{Epochs: 300, LearningRate: 1.5})
	if err := lg.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(lg, x, y); acc < 0.95 {
		t.Fatalf("logreg accuracy = %v", acc)
	}
	// Both features should carry positive weight.
	if lg.Weights[0] <= 0 || lg.Weights[1] <= 0 {
		t.Fatalf("weights = %v", lg.Weights)
	}
}

func TestLogisticRegressionCannotLearnXOR(t *testing.T) {
	x, y := xorData(400, 6)
	lg := NewLogisticRegression(LogRegParams{Epochs: 200})
	if err := lg.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	// Random draws leave the four XOR cells slightly uneven, so a linear
	// model can edge past 75% by exploiting the imbalance — but it can
	// never approach the ~100% a nonlinear model reaches.
	if acc := accuracy(lg, x, y); acc > 0.85 {
		t.Fatalf("a linear model should not fit XOR, got %v", acc)
	}
}

func TestLogisticRegressionL2Shrinks(t *testing.T) {
	x, y := linearData(400, 7)
	free := NewLogisticRegression(LogRegParams{Epochs: 200})
	reg := NewLogisticRegression(LogRegParams{Epochs: 200, L2: 0.5})
	if err := free.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	if err := reg.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	if math.Abs(reg.Weights[0]) >= math.Abs(free.Weights[0]) {
		t.Fatal("L2 should shrink weights")
	}
}

func TestLogisticRegressionWeighted(t *testing.T) {
	// Conflicting labels at the same point: heavier side wins.
	x := [][]float64{{1}, {1}}
	y := []float64{1, 0}
	lg := NewLogisticRegression(LogRegParams{Epochs: 300, LearningRate: 1})
	if err := lg.Fit(x, y, []float64{5, 1}); err != nil {
		t.Fatal(err)
	}
	if lg.Predict([]float64{1}) != 1 {
		t.Fatal("weighted logreg should favor the heavy class")
	}
}

func TestNeuralNetworkLearnsXOR(t *testing.T) {
	x, y := xorData(500, 8)
	nn := NewNeuralNetwork(NNParams{Hidden: 8, Epochs: 60, LearningRate: 0.5, Seed: 3})
	if err := nn.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(nn, x, y); acc < 0.95 {
		t.Fatalf("nn accuracy on XOR = %v", acc)
	}
}

func TestNeuralNetworkDeterministicPerSeed(t *testing.T) {
	x, y := linearData(200, 9)
	a := NewNeuralNetwork(NNParams{Seed: 42, Epochs: 3})
	b := NewNeuralNetwork(NNParams{Seed: 42, Epochs: 3})
	if err := a.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if a.PredictProba(x[i]) != b.PredictProba(x[i]) {
			t.Fatal("same seed must give identical networks")
		}
	}
}

func nbDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	s := &dataset.Schema{
		Target: "y",
		Attrs: []dataset.Attr{
			{Name: "a", Values: []string{"0", "1"}},
			{Name: "b", Values: []string{"0", "1", "2"}},
		},
	}
	d := dataset.New(s)
	r := stats.NewRNG(10)
	for i := 0; i < 500; i++ {
		a := int32(r.Intn(2))
		b := int32(r.Intn(3))
		// y strongly follows a.
		label := int8(a)
		if r.Float64() < 0.1 {
			label = 1 - label
		}
		d.Append([]int32{a, b}, label)
	}
	return d
}

func TestNaiveBayes(t *testing.T) {
	d := nbDataset(t)
	var nb NaiveBayes
	if err := nb.FitDataset(d); err != nil {
		t.Fatal(err)
	}
	if p := nb.ProbaRow([]int32{1, 0}); p < 0.7 {
		t.Fatalf("P(y=1|a=1) = %v, want high", p)
	}
	if p := nb.ProbaRow([]int32{0, 0}); p > 0.3 {
		t.Fatalf("P(y=1|a=0) = %v, want low", p)
	}
	probs := nb.ProbaDataset(d)
	if len(probs) != d.Len() {
		t.Fatal("ProbaDataset length")
	}
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
	}
}

func TestNaiveBayesWeighted(t *testing.T) {
	s := &dataset.Schema{Target: "y", Attrs: []dataset.Attr{{Name: "a", Values: []string{"0", "1"}}}}
	d := dataset.New(s)
	// Same feature, conflicting labels, heavy positive weight.
	d.AppendWeighted([]int32{0}, 1, 10)
	d.AppendWeighted([]int32{0}, 0, 1)
	var nb NaiveBayes
	if err := nb.FitDataset(d); err != nil {
		t.Fatal(err)
	}
	if p := nb.ProbaRow([]int32{0}); p < 0.7 {
		t.Fatalf("weighted NB proba = %v", p)
	}
	if err := (&NaiveBayes{}).FitDataset(dataset.New(s)); err == nil {
		t.Fatal("empty dataset must error")
	}
}

func TestConfusionMetrics(t *testing.T) {
	var c Confusion
	// 3 TP, 1 FP, 4 TN, 2 FN.
	for i := 0; i < 3; i++ {
		c.Observe(1, 1, 1)
	}
	c.Observe(0, 1, 1)
	for i := 0; i < 4; i++ {
		c.Observe(0, 0, 1)
	}
	c.Observe(1, 0, 1)
	c.Observe(1, 0, 1)
	if got := c.Accuracy(); got != 0.7 {
		t.Fatalf("Accuracy = %v", got)
	}
	if got := c.FPR(); got != 0.2 {
		t.Fatalf("FPR = %v", got)
	}
	if got := c.FNR(); got != 0.4 {
		t.Fatalf("FNR = %v", got)
	}
	if got := c.TPR(); got != 0.6 {
		t.Fatalf("TPR = %v", got)
	}
	if got := c.PositiveRate(); got != 0.4 {
		t.Fatalf("PositiveRate = %v", got)
	}
	if got := c.ErrorRate(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("ErrorRate = %v", got)
	}
	var empty Confusion
	if empty.Accuracy() != 0 || empty.FPR() != 0 || empty.FNR() != 0 || empty.PositiveRate() != 0 {
		t.Fatal("empty confusion must return zeros")
	}
}

func TestNewConfusion(t *testing.T) {
	y := []int8{1, 0, 1, 0}
	pred := []int{1, 1, 0, 0}
	c := NewConfusion(y, pred)
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion %+v", c)
	}
}

func TestModelTrainPredict(t *testing.T) {
	s := &dataset.Schema{
		Target: "y",
		Attrs: []dataset.Attr{
			{Name: "f", Values: []string{"lo", "hi"}, Ordered: true},
		},
	}
	d := dataset.New(s)
	r := stats.NewRNG(11)
	for i := 0; i < 300; i++ {
		v := int32(r.Intn(2))
		label := int8(v)
		if r.Float64() < 0.05 {
			label = 1 - label
		}
		d.Append([]int32{v}, label)
	}
	m, err := Train(d, NewDecisionTree(TreeParams{}))
	if err != nil {
		t.Fatal(err)
	}
	preds := m.Predict(d)
	c := NewConfusion(d.Labels, preds)
	if c.Accuracy() < 0.9 {
		t.Fatalf("model accuracy = %v", c.Accuracy())
	}
	probs := m.PredictProba(d)
	if len(probs) != d.Len() {
		t.Fatal("proba length")
	}
}

func TestNewClassifierKinds(t *testing.T) {
	for _, k := range AllModels {
		c, err := NewClassifier(k, 1)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if c == nil {
			t.Fatalf("nil classifier for %s", k)
		}
		x, y := linearData(100, 12)
		if err := c.Fit(x, y, nil); err != nil {
			t.Fatalf("%s: %v", k, err)
		}
	}
	if _, err := NewClassifier(ModelKind("nope"), 1); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("unknown kind = %v, want ErrUnknownModel", err)
	}
}

func TestGridSearch(t *testing.T) {
	s := &dataset.Schema{
		Target: "y",
		Attrs: []dataset.Attr{
			{Name: "a", Values: []string{"0", "1"}},
			{Name: "b", Values: []string{"0", "1"}},
		},
	}
	d := dataset.New(s)
	r := stats.NewRNG(13)
	for i := 0; i < 400; i++ {
		a, b := int32(r.Intn(2)), int32(r.Intn(2))
		label := int8(0)
		if a != b {
			label = 1
		}
		d.Append([]int32{a, b}, label)
	}
	// A depth-1 stump cannot learn XOR; a depth-3 tree can. Grid search
	// must rank the deeper tree first.
	points := []GridPoint{
		{Name: "stump", Build: func(seed int64) Classifier {
			return NewDecisionTree(TreeParams{MaxDepth: 1, Seed: seed})
		}},
		{Name: "deep", Build: func(seed int64) Classifier {
			return NewDecisionTree(TreeParams{MaxDepth: 3, Seed: seed})
		}},
	}
	res, err := GridSearch(d, points, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Point.Name != "deep" {
		t.Fatalf("grid search ranked %q first", res[0].Point.Name)
	}
	if res[0].Accuracy < 0.95 || res[1].Accuracy > 0.8 {
		t.Fatalf("accuracies: %v / %v", res[0].Accuracy, res[1].Accuracy)
	}
	if _, err := GridSearch(d, nil, 3, 1); err == nil {
		t.Fatal("empty grid must error")
	}
}

func TestDefaultGrids(t *testing.T) {
	for _, k := range AllModels {
		grid, err := DefaultGrid(k)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if len(grid) < 2 {
			t.Fatalf("grid for %s too small", k)
		}
		for _, pt := range grid {
			if pt.Build == nil || pt.Name == "" {
				t.Fatalf("bad grid point for %s", k)
			}
		}
	}
	if _, err := DefaultGrid(ModelKind("nope")); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("unknown grid = %v, want ErrUnknownModel", err)
	}
}

func TestWeightedSamplerDistribution(t *testing.T) {
	w := []float64{1, 0, 3}
	s := stats.NewWeightedSampler(w)
	r := stats.NewRNG(14)
	counts := make([]int, 3)
	for i := 0; i < 4000; i++ {
		counts[s.Draw(r)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.6 {
		t.Fatalf("draw ratio %v, want ~3", ratio)
	}
}

func TestBrierAndLogLoss(t *testing.T) {
	labels := []int8{1, 0, 1, 0}
	perfect := []float64{1, 0, 1, 0}
	if got := Brier(perfect, labels); got != 0 {
		t.Fatalf("perfect Brier = %v", got)
	}
	uninformative := []float64{0.5, 0.5, 0.5, 0.5}
	if got := Brier(uninformative, labels); got != 0.25 {
		t.Fatalf("coin-flip Brier = %v", got)
	}
	// Log loss of the constant 0.5 prediction is ln 2.
	if got := LogLoss(uninformative, labels); math.Abs(got-math.Ln2) > 1e-12 {
		t.Fatalf("coin-flip LogLoss = %v", got)
	}
	// Overconfident wrong predictions stay finite.
	wrong := []float64{0, 1, 0, 1}
	if got := LogLoss(wrong, labels); math.IsInf(got, 0) || got < 20 {
		t.Fatalf("confident-wrong LogLoss = %v", got)
	}
	if Brier(nil, nil) != 0 || LogLoss(nil, nil) != 0 {
		t.Fatal("empty inputs must return 0")
	}
	// Better-calibrated probabilities score lower on both.
	good := []float64{0.9, 0.1, 0.8, 0.2}
	if Brier(good, labels) >= Brier(uninformative, labels) {
		t.Fatal("calibrated Brier should beat coin flip")
	}
	if LogLoss(good, labels) >= LogLoss(uninformative, labels) {
		t.Fatal("calibrated LogLoss should beat coin flip")
	}
}

func TestFeatureImportance(t *testing.T) {
	// Feature 0 fully determines the label; feature 1 is noise. The
	// tree must credit (nearly) all importance to feature 0.
	r := stats.NewRNG(31)
	var x [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		a, b := float64(r.Intn(2)), r.Float64()
		x = append(x, []float64{a, b})
		y = append(y, a)
	}
	tree := NewDecisionTree(TreeParams{MaxDepth: 3})
	if tree.FeatureImportance() != nil {
		t.Fatal("untrained tree must report nil importance")
	}
	if err := tree.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	imp := tree.FeatureImportance()
	if len(imp) != 2 {
		t.Fatalf("importance width %d", len(imp))
	}
	var sum float64
	for _, v := range imp {
		if v < 0 {
			t.Fatalf("negative importance %v", imp)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importances sum to %v", sum)
	}
	if imp[0] < 0.95 {
		t.Fatalf("deterministic feature credited only %v", imp[0])
	}
}

func TestForestFeatureImportance(t *testing.T) {
	r := stats.NewRNG(33)
	var x [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		a, b := float64(r.Intn(2)), r.Float64()
		x = append(x, []float64{a, b})
		y = append(y, a)
	}
	f := NewRandomForest(ForestParams{Trees: 10, MaxDepth: 3, Seed: 1, MaxFeatures: 2})
	if f.FeatureImportance() != nil {
		t.Fatal("untrained forest must report nil importance")
	}
	if err := f.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	imp := f.FeatureImportance()
	if len(imp) != 2 || imp[0] < imp[1] {
		t.Fatalf("forest importance %v", imp)
	}
}

func TestEncodingColumnNames(t *testing.T) {
	s := &dataset.Schema{
		Target: "y",
		Attrs: []dataset.Attr{
			{Name: "age", Values: []string{"a", "b", "c"}, Ordered: true},
			{Name: "race", Values: []string{"x", "y", "z"}},
			{Name: "sex", Values: []string{"m", "f"}},
		},
	}
	e := dataset.NewEncoding(s)
	names := e.ColumnNames()
	want := []string{"age", "race=x", "race=y", "race=z", "sex"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}
