package ml

import "math"

// Confusion is a binary confusion matrix over (possibly weighted)
// instances.
type Confusion struct {
	TP, FP, TN, FN float64
}

// Observe adds one instance with the given truth, prediction, and
// weight.
func (c *Confusion) Observe(y, pred int, w float64) {
	switch {
	case y == 1 && pred == 1:
		c.TP += w
	case y == 0 && pred == 1:
		c.FP += w
	case y == 0 && pred == 0:
		c.TN += w
	default:
		c.FN += w
	}
}

// NewConfusion tallies predictions against labels with unit weights.
func NewConfusion(y []int8, pred []int) Confusion {
	var c Confusion
	for i := range y {
		c.Observe(int(y[i]), pred[i], 1)
	}
	return c
}

// Accuracy is (TP+TN)/total, 0 for an empty matrix.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return (c.TP + c.TN) / total
}

// FPR is the false-positive rate Pr[h(x)=1 | y=0]; 0 when there are no
// negatives.
func (c Confusion) FPR() float64 {
	neg := c.FP + c.TN
	if neg == 0 {
		return 0
	}
	return c.FP / neg
}

// FNR is the false-negative rate Pr[h(x)=0 | y=1]; 0 when there are no
// positives.
func (c Confusion) FNR() float64 {
	pos := c.TP + c.FN
	if pos == 0 {
		return 0
	}
	return c.FN / pos
}

// TPR is the true-positive rate (recall).
func (c Confusion) TPR() float64 { return 1 - c.FNR() }

// PositiveRate is Pr[h(x)=1], the statistic behind statistical parity.
func (c Confusion) PositiveRate() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return (c.TP + c.FP) / total
}

// ErrorRate is Pr[h(x) != y].
func (c Confusion) ErrorRate() float64 { return 1 - c.Accuracy() }

// Brier returns the Brier score (mean squared error of the predicted
// probabilities), a proper scoring rule for probability quality. Lower
// is better; 0.25 is the score of a constant 0.5 prediction.
func Brier(probs []float64, labels []int8) float64 {
	if len(probs) == 0 {
		return 0
	}
	var s float64
	for i, p := range probs {
		d := p - float64(labels[i])
		s += d * d
	}
	return s / float64(len(probs))
}

// LogLoss returns the mean negative log-likelihood of the predicted
// probabilities, clamped away from 0/1 to keep the loss finite for
// overconfident wrong predictions.
func LogLoss(probs []float64, labels []int8) float64 {
	if len(probs) == 0 {
		return 0
	}
	const eps = 1e-12
	var s float64
	for i, p := range probs {
		if p < eps {
			p = eps
		}
		if p > 1-eps {
			p = 1 - eps
		}
		if labels[i] == 1 {
			s += -math.Log(p)
		} else {
			s += -math.Log(1 - p)
		}
	}
	return s / float64(len(probs))
}
