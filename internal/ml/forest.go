package ml

import (
	"context"
	"math"

	"repro/internal/stats"
)

// ForestParams configures a random forest.
type ForestParams struct {
	// Trees is the ensemble size; 0 means the default of 50.
	Trees int
	// MaxDepth per tree; 0 means the default of 10.
	MaxDepth int
	// MaxFeatures per split; 0 means sqrt(#features).
	MaxFeatures int
	// MinLeafWeight per tree leaf; 0 means 1.
	MinLeafWeight float64
	// Seed drives bootstrapping and feature sampling.
	Seed int64
}

func (p ForestParams) withDefaults() ForestParams {
	if p.Trees <= 0 {
		p.Trees = 50
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = 10
	}
	return p
}

// RandomForest is a bagged ensemble of decision trees with per-split
// feature subsampling, averaging leaf probabilities.
type RandomForest struct {
	Params ForestParams
	trees  []*DecisionTree
}

// NewRandomForest returns an untrained forest.
func NewRandomForest(p ForestParams) *RandomForest {
	return &RandomForest{Params: p.withDefaults()}
}

// Fit trains the ensemble. Sample weights steer the bootstrap draw:
// instances are resampled proportionally to their weight, which is how
// the reweighting baselines influence tree ensembles.
func (f *RandomForest) Fit(x [][]float64, y []float64, w []float64) error {
	return f.FitCtx(context.Background(), x, y, w)
}

// FitCtx is Fit with a per-tree cancellation check; on cancellation the
// trees grown so far are discarded and ctx.Err() is returned.
func (f *RandomForest) FitCtx(ctx context.Context, x [][]float64, y []float64, w []float64) error {
	if err := checkTrainingInput(x, y, w); err != nil {
		return err
	}
	rng := stats.NewRNG(f.Params.Seed)
	n := len(x)
	maxFeat := f.Params.MaxFeatures
	if maxFeat <= 0 {
		maxFeat = int(math.Ceil(math.Sqrt(float64(len(x[0])))))
	}
	var sampler *stats.WeightedSampler
	if w != nil {
		sampler = stats.NewWeightedSampler(w)
	}
	f.trees = make([]*DecisionTree, f.Params.Trees)
	for t := range f.trees {
		if err := epochTick(ctx, t); err != nil {
			f.trees = nil // half an ensemble is a silently different model
			return err
		}
		// Weighted bootstrap.
		bx := make([][]float64, n)
		by := make([]float64, n)
		for i := 0; i < n; i++ {
			var j int
			if sampler == nil {
				j = rng.Intn(n)
			} else {
				j = sampler.Draw(rng)
			}
			bx[i] = x[j]
			by[i] = y[j]
		}
		tree := NewDecisionTree(TreeParams{
			MaxDepth:      f.Params.MaxDepth,
			MaxFeatures:   maxFeat,
			MinLeafWeight: f.Params.MinLeafWeight,
			Seed:          rng.Int63(),
		})
		if err := tree.FitCtx(ctx, bx, by, nil); err != nil {
			f.trees = nil
			return err
		}
		f.trees[t] = tree
	}
	return nil
}

// PredictProba averages the member trees' leaf probabilities.
func (f *RandomForest) PredictProba(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0.5
	}
	var s float64
	for _, t := range f.trees {
		s += t.PredictProba(x)
	}
	return s / float64(len(f.trees))
}

// Predict thresholds PredictProba at 0.5.
func (f *RandomForest) Predict(x []float64) int { return threshold(f.PredictProba(x)) }

// FeatureImportance averages the member trees' normalized Gini
// importances (nil before training).
func (f *RandomForest) FeatureImportance() []float64 {
	if len(f.trees) == 0 {
		return nil
	}
	var out []float64
	for _, t := range f.trees {
		imp := t.FeatureImportance()
		if out == nil {
			out = make([]float64, len(imp))
		}
		for i, v := range imp {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(f.trees))
	}
	return out
}
