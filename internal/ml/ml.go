// Package ml implements the downstream classifiers the paper evaluates
// against — decision tree (DT), random forest (RF), logistic regression
// (LG), and a feed-forward neural network (NN) — plus the categorical
// Naïve Bayes ranker used by preferential sampling and data massaging,
// confusion-matrix metrics, and k-fold grid search. Everything is built
// from scratch on the standard library and supports per-instance sample
// weights, which the reweighting baselines require.
package ml

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/obs"
)

// Classifier is a binary probabilistic classifier over float feature
// vectors. Fit trains on a weighted sample; PredictProba returns
// P(y=1|x); Predict thresholds at 0.5.
type Classifier interface {
	Fit(x [][]float64, y []float64, w []float64) error
	PredictProba(x []float64) float64
	Predict(x []float64) int
}

// ContextFitter is implemented by classifiers whose training loop can
// be cancelled: FitCtx checks ctx cooperatively (per epoch for the
// iterative learners, per tree for the forest) and returns ctx.Err()
// once cancelled, leaving the model partially trained. All four
// built-in classifiers implement it.
type ContextFitter interface {
	FitCtx(ctx context.Context, x [][]float64, y []float64, w []float64) error
}

// threshold converts a probability into a hard 0/1 prediction.
func threshold(p float64) int {
	if p >= 0.5 {
		return 1
	}
	return 0
}

// checkTrainingInput validates the (x, y, w) triple shared by all
// learners.
func checkTrainingInput(x [][]float64, y []float64, w []float64) error {
	if len(x) == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	if len(y) != len(x) {
		return fmt.Errorf("ml: %d rows but %d labels", len(x), len(y))
	}
	if w != nil && len(w) != len(x) {
		return fmt.Errorf("ml: %d rows but %d weights", len(x), len(w))
	}
	width := len(x[0])
	for i := range x {
		if len(x[i]) != width {
			return fmt.Errorf("ml: ragged feature matrix at row %d", i)
		}
	}
	for i := range y {
		if y[i] != 0 && y[i] != 1 {
			return fmt.Errorf("ml: label %v at row %d is not binary", y[i], i)
		}
		if w != nil && w[i] < 0 {
			return fmt.Errorf("ml: negative weight at row %d", i)
		}
	}
	return nil
}

// epochTick is the shared cooperative checkpoint of the context-aware
// training loops: it fires the ml.train.epoch fault-injection point
// with the epoch (or tree) index, counts the epoch in the context's
// metrics registry (ml.epochs — per-epoch for the iterative learners,
// per-tree for the forest), and then polls ctx.
func epochTick(ctx context.Context, epoch int) error {
	obs.MetricsFrom(ctx).Counter("ml.epochs").Inc()
	if faults.Active() {
		if err := faults.FireCtx(ctx, faults.TrainEpoch, epoch); err != nil {
			return err
		}
	}
	return ctx.Err()
}

// ones returns a unit weight vector of length n.
func ones(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// Model binds a trained classifier to the feature encoding of a schema,
// so callers can predict directly on datasets.
type Model struct {
	Enc *dataset.Encoding
	Clf Classifier
}

// Train encodes d and fits clf on it, returning the bound model.
func Train(d *dataset.Dataset, clf Classifier) (*Model, error) {
	return TrainCtx(context.Background(), d, clf)
}

// TrainCtx is Train under a context. When clf implements ContextFitter
// the training loop itself checks ctx (per epoch or per tree) and
// aborts promptly with ctx.Err(); otherwise ctx is only consulted
// before training starts.
func TrainCtx(ctx context.Context, d *dataset.Dataset, clf Classifier) (*Model, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, sp := obs.StartSpan(ctx, "ml.train")
	if sp != nil {
		sp.SetStr("clf", fmt.Sprintf("%T", clf))
		sp.SetInt("rows", int64(d.Len()))
	}
	defer sp.End()
	enc := dataset.NewEncoding(d.Schema)
	x, y, w := enc.Encode(d)
	var err error
	if cf, ok := clf.(ContextFitter); ok {
		err = cf.FitCtx(ctx, x, y, w)
	} else {
		err = clf.Fit(x, y, w)
	}
	if err != nil {
		return nil, err
	}
	if lg := obs.LoggerFrom(ctx); lg.On(obs.LevelInfo) {
		lg.Scope("ml").Info("trained", "clf", fmt.Sprintf("%T", clf), "rows", d.Len())
	}
	return &Model{Enc: enc, Clf: clf}, nil
}

// TrainKind constructs the default classifier of the given kind (see
// NewClassifier) and trains it on d — the common train-by-name path of
// the experiments and CLIs. An unknown kind returns ErrUnknownModel.
func TrainKind(d *dataset.Dataset, kind ModelKind, seed int64) (*Model, error) {
	return TrainKindCtx(context.Background(), d, kind, seed)
}

// TrainKindCtx is TrainKind under a context; see TrainCtx.
func TrainKindCtx(ctx context.Context, d *dataset.Dataset, kind ModelKind, seed int64) (*Model, error) {
	clf, err := NewClassifier(kind, seed)
	if err != nil {
		return nil, err
	}
	return TrainCtx(ctx, d, clf)
}

// Predict returns hard predictions for every instance of d.
func (m *Model) Predict(d *dataset.Dataset) []int {
	out := make([]int, d.Len())
	buf := make([]float64, m.Enc.Width())
	for i := range d.Rows {
		m.Enc.EncodeRow(d.Rows[i], buf)
		out[i] = m.Clf.Predict(buf)
	}
	return out
}

// PredictProba returns P(y=1|x) for every instance of d.
func (m *Model) PredictProba(d *dataset.Dataset) []float64 {
	out := make([]float64, d.Len())
	buf := make([]float64, m.Enc.Width())
	for i := range d.Rows {
		m.Enc.EncodeRow(d.Rows[i], buf)
		out[i] = m.Clf.PredictProba(buf)
	}
	return out
}
