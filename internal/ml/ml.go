// Package ml implements the downstream classifiers the paper evaluates
// against — decision tree (DT), random forest (RF), logistic regression
// (LG), and a feed-forward neural network (NN) — plus the categorical
// Naïve Bayes ranker used by preferential sampling and data massaging,
// confusion-matrix metrics, and k-fold grid search. Everything is built
// from scratch on the standard library and supports per-instance sample
// weights, which the reweighting baselines require.
package ml

import (
	"fmt"

	"repro/internal/dataset"
)

// Classifier is a binary probabilistic classifier over float feature
// vectors. Fit trains on a weighted sample; PredictProba returns
// P(y=1|x); Predict thresholds at 0.5.
type Classifier interface {
	Fit(x [][]float64, y []float64, w []float64) error
	PredictProba(x []float64) float64
	Predict(x []float64) int
}

// threshold converts a probability into a hard 0/1 prediction.
func threshold(p float64) int {
	if p >= 0.5 {
		return 1
	}
	return 0
}

// checkTrainingInput validates the (x, y, w) triple shared by all
// learners.
func checkTrainingInput(x [][]float64, y []float64, w []float64) error {
	if len(x) == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	if len(y) != len(x) {
		return fmt.Errorf("ml: %d rows but %d labels", len(x), len(y))
	}
	if w != nil && len(w) != len(x) {
		return fmt.Errorf("ml: %d rows but %d weights", len(x), len(w))
	}
	width := len(x[0])
	for i := range x {
		if len(x[i]) != width {
			return fmt.Errorf("ml: ragged feature matrix at row %d", i)
		}
	}
	for i := range y {
		if y[i] != 0 && y[i] != 1 {
			return fmt.Errorf("ml: label %v at row %d is not binary", y[i], i)
		}
		if w != nil && w[i] < 0 {
			return fmt.Errorf("ml: negative weight at row %d", i)
		}
	}
	return nil
}

// ones returns a unit weight vector of length n.
func ones(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// Model binds a trained classifier to the feature encoding of a schema,
// so callers can predict directly on datasets.
type Model struct {
	Enc *dataset.Encoding
	Clf Classifier
}

// Train encodes d and fits clf on it, returning the bound model.
func Train(d *dataset.Dataset, clf Classifier) (*Model, error) {
	enc := dataset.NewEncoding(d.Schema)
	x, y, w := enc.Encode(d)
	if err := clf.Fit(x, y, w); err != nil {
		return nil, err
	}
	return &Model{Enc: enc, Clf: clf}, nil
}

// Predict returns hard predictions for every instance of d.
func (m *Model) Predict(d *dataset.Dataset) []int {
	out := make([]int, d.Len())
	buf := make([]float64, m.Enc.Width())
	for i := range d.Rows {
		m.Enc.EncodeRow(d.Rows[i], buf)
		out[i] = m.Clf.Predict(buf)
	}
	return out
}

// PredictProba returns P(y=1|x) for every instance of d.
func (m *Model) PredictProba(d *dataset.Dataset) []float64 {
	out := make([]float64, d.Len())
	buf := make([]float64, m.Enc.Width())
	for i := range d.Rows {
		m.Enc.EncodeRow(d.Rows[i], buf)
		out[i] = m.Clf.PredictProba(buf)
	}
	return out
}
