package ml

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
)

func roundTrip(t *testing.T, c Classifier) Classifier {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, c); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

func assertSamePredictions(t *testing.T, a, b Classifier, x [][]float64) {
	t.Helper()
	for i := range x {
		pa, pb := a.PredictProba(x[i]), b.PredictProba(x[i])
		if pa != pb {
			t.Fatalf("row %d: proba %v != %v after round trip", i, pa, pb)
		}
	}
}

func TestPersistDecisionTree(t *testing.T) {
	x, y := xorData(300, 1)
	tree := NewDecisionTree(TreeParams{MaxDepth: 5})
	if err := tree.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	loaded := roundTrip(t, tree)
	assertSamePredictions(t, tree, loaded, x)
	// Params survive too.
	if loaded.(*DecisionTree).Params.MaxDepth != 5 {
		t.Fatal("params lost")
	}
}

func TestPersistUntrainedTree(t *testing.T) {
	tree := NewDecisionTree(TreeParams{})
	loaded := roundTrip(t, tree)
	if p := loaded.PredictProba([]float64{1}); p != 0.5 {
		t.Fatalf("untrained round trip proba = %v", p)
	}
}

func TestPersistRandomForest(t *testing.T) {
	x, y := xorData(300, 2)
	f := NewRandomForest(ForestParams{Trees: 5, MaxDepth: 4, Seed: 3})
	if err := f.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	assertSamePredictions(t, f, roundTrip(t, f), x)
}

func TestPersistLogisticRegression(t *testing.T) {
	x, y := linearData(300, 3)
	l := NewLogisticRegression(LogRegParams{Epochs: 50})
	if err := l.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	assertSamePredictions(t, l, roundTrip(t, l), x)
}

func TestPersistNeuralNetwork(t *testing.T) {
	x, y := xorData(300, 4)
	n := NewNeuralNetwork(NNParams{Hidden: 6, Epochs: 20, Seed: 5})
	if err := n.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	assertSamePredictions(t, n, roundTrip(t, n), x)
}

func TestPersistFile(t *testing.T) {
	x, y := linearData(200, 6)
	l := NewLogisticRegression(LogRegParams{Epochs: 30})
	if err := l.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := SaveFile(path, l); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePredictions(t, l, loaded, x)
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("{not json")); err == nil {
		t.Fatal("garbage must error")
	}
	if _, err := Load(bytes.NewBufferString(`{"kind":"martian","params":{},"state":{}}`)); err == nil {
		t.Fatal("unknown kind must error")
	}
}

func TestCorruptTreeStateRejected(t *testing.T) {
	// A non-leaf node whose child index points backwards must be
	// rejected rather than building a cyclic tree.
	nodes := []treeNodeJSON{
		{Leaf: false, Feature: 0, Thresh: 0.5, Left: 0, Right: 0},
	}
	raw, _ := json.Marshal(nodes)
	tree := NewDecisionTree(TreeParams{})
	if err := tree.UnmarshalModel(raw); err == nil {
		t.Fatal("cyclic serialization must be rejected")
	}
}

func TestSaveUnsupportedClassifier(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, unsupportedClassifier{}); err == nil {
		t.Fatal("unsupported classifier must error")
	}
}

type unsupportedClassifier struct{}

func (unsupportedClassifier) Fit([][]float64, []float64, []float64) error { return nil }
func (unsupportedClassifier) PredictProba([]float64) float64              { return 0.5 }
func (unsupportedClassifier) Predict([]float64) int                       { return 0 }
