package ml

// CostSensitive wraps a probabilistic classifier with asymmetric
// misclassification costs (Zadrozny et al., the cost-sensitive setting
// of the paper's §VI Limitations): the decision threshold becomes
// FPCost / (FPCost + FNCost), the Bayes-optimal cutoff when a false
// positive costs FPCost and a false negative FNCost. The paper notes
// its representation-bias ⇄ unfairness correlation is derived for
// accuracy-optimized classifiers and may not hold here; the experiments
// use this wrapper to probe that limitation.
type CostSensitive struct {
	Base Classifier
	// FPCost and FNCost are the misclassification costs; non-positive
	// values default to 1 (plain accuracy optimization).
	FPCost, FNCost float64
}

// Threshold returns the decision cutoff implied by the costs.
func (c CostSensitive) Threshold() float64 {
	fp, fn := c.FPCost, c.FNCost
	if fp <= 0 {
		fp = 1
	}
	if fn <= 0 {
		fn = 1
	}
	return fp / (fp + fn)
}

// Fit trains the base classifier.
func (c CostSensitive) Fit(x [][]float64, y []float64, w []float64) error {
	return c.Base.Fit(x, y, w)
}

// PredictProba returns the base classifier's probability (costs affect
// only the decision, not the estimate).
func (c CostSensitive) PredictProba(x []float64) float64 {
	return c.Base.PredictProba(x)
}

// Predict applies the cost-adjusted threshold.
func (c CostSensitive) Predict(x []float64) int {
	if c.Base.PredictProba(x) >= c.Threshold() {
		return 1
	}
	return 0
}
