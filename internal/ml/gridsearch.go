package ml

import (
	"errors"
	"fmt"

	"repro/internal/dataset"
)

// ModelKind names the four downstream classifiers of the evaluation.
type ModelKind string

const (
	DT ModelKind = "DT" // decision tree
	RF ModelKind = "RF" // random forest
	LG ModelKind = "LG" // logistic regression
	NN ModelKind = "NN" // neural network
)

// AllModels lists the classifiers in the paper's order.
var AllModels = []ModelKind{DT, RF, LG, NN}

// ErrUnknownModel is returned for a ModelKind outside AllModels.
var ErrUnknownModel = errors.New("ml: unknown model kind")

// NewClassifier constructs a classifier of the given kind with the
// repository's tuned default hyperparameters (chosen by GridSearch on
// the synthetic datasets; see experiments). An unrecognized kind
// returns ErrUnknownModel.
func NewClassifier(kind ModelKind, seed int64) (Classifier, error) {
	switch kind {
	case DT:
		return NewDecisionTree(TreeParams{MaxDepth: 10, MinLeafWeight: 5, Seed: seed}), nil
	case RF:
		return NewRandomForest(ForestParams{Trees: 30, MaxDepth: 10, Seed: seed}), nil
	case LG:
		return NewLogisticRegression(LogRegParams{Epochs: 150, LearningRate: 0.8, L2: 1e-4, Seed: seed}), nil
	case NN:
		return NewNeuralNetwork(NNParams{Hidden: 16, Epochs: 8, LearningRate: 0.1, Seed: seed}), nil
	}
	return nil, fmt.Errorf("%w %q", ErrUnknownModel, kind)
}

// GridPoint is one hyperparameter assignment: a factory plus its
// human-readable description.
type GridPoint struct {
	Name  string
	Build func(seed int64) Classifier
}

// GridResult reports the cross-validated accuracy of one grid point.
type GridResult struct {
	Point    GridPoint
	Accuracy float64
}

// GridSearch evaluates each grid point with k-fold cross-validation on
// d and returns all results with the best first. It mirrors the paper's
// "grid search to obtain the optimal hyperparameters".
func GridSearch(d *dataset.Dataset, points []GridPoint, k int, seed int64) ([]GridResult, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("ml: empty grid")
	}
	folds := d.KFold(k, seed)
	enc := dataset.NewEncoding(d.Schema)
	x, y, w := enc.Encode(d)
	results := make([]GridResult, 0, len(points))
	for _, pt := range points {
		var correct, total float64
		for fi, fold := range folds {
			trainIdx, testIdx := fold[0], fold[1]
			tx := make([][]float64, len(trainIdx))
			ty := make([]float64, len(trainIdx))
			tw := make([]float64, len(trainIdx))
			for i, j := range trainIdx {
				tx[i], ty[i], tw[i] = x[j], y[j], w[j]
			}
			clf := pt.Build(seed + int64(fi))
			if err := clf.Fit(tx, ty, tw); err != nil {
				return nil, fmt.Errorf("ml: grid point %s: %w", pt.Name, err)
			}
			for _, j := range testIdx {
				if float64(clf.Predict(x[j])) == y[j] {
					correct++
				}
				total++
			}
		}
		results = append(results, GridResult{Point: pt, Accuracy: correct / total})
	}
	// Selection sort by accuracy descending keeps ties stable.
	for i := 0; i < len(results); i++ {
		best := i
		for j := i + 1; j < len(results); j++ {
			if results[j].Accuracy > results[best].Accuracy {
				best = j
			}
		}
		results[i], results[best] = results[best], results[i]
	}
	return results, nil
}

// DefaultGrid returns a small hyperparameter grid for the given model
// kind, in the spirit of the paper's tuning. An unrecognized kind
// returns ErrUnknownModel.
func DefaultGrid(kind ModelKind) ([]GridPoint, error) {
	switch kind {
	case DT:
		var pts []GridPoint
		for _, depth := range []int{6, 10, 14} {
			for _, leaf := range []float64{1, 5, 20} {
				depth, leaf := depth, leaf
				pts = append(pts, GridPoint{
					Name: fmt.Sprintf("DT(depth=%d,leaf=%v)", depth, leaf),
					Build: func(seed int64) Classifier {
						return NewDecisionTree(TreeParams{MaxDepth: depth, MinLeafWeight: leaf, Seed: seed})
					},
				})
			}
		}
		return pts, nil
	case RF:
		var pts []GridPoint
		for _, trees := range []int{10, 30} {
			for _, depth := range []int{8, 12} {
				trees, depth := trees, depth
				pts = append(pts, GridPoint{
					Name: fmt.Sprintf("RF(trees=%d,depth=%d)", trees, depth),
					Build: func(seed int64) Classifier {
						return NewRandomForest(ForestParams{Trees: trees, MaxDepth: depth, Seed: seed})
					},
				})
			}
		}
		return pts, nil
	case LG:
		var pts []GridPoint
		for _, lr := range []float64{0.3, 0.8} {
			for _, l2 := range []float64{0, 1e-4, 1e-2} {
				lr, l2 := lr, l2
				pts = append(pts, GridPoint{
					Name: fmt.Sprintf("LG(lr=%v,l2=%v)", lr, l2),
					Build: func(seed int64) Classifier {
						return NewLogisticRegression(LogRegParams{LearningRate: lr, L2: l2, Epochs: 150, Seed: seed})
					},
				})
			}
		}
		return pts, nil
	case NN:
		var pts []GridPoint
		for _, hidden := range []int{8, 16} {
			for _, epochs := range []int{5, 10} {
				hidden, epochs := hidden, epochs
				pts = append(pts, GridPoint{
					Name: fmt.Sprintf("NN(hidden=%d,epochs=%d)", hidden, epochs),
					Build: func(seed int64) Classifier {
						return NewNeuralNetwork(NNParams{Hidden: hidden, Epochs: epochs, LearningRate: 0.1, Seed: seed})
					},
				})
			}
		}
		return pts, nil
	}
	return nil, fmt.Errorf("%w %q", ErrUnknownModel, kind)
}
