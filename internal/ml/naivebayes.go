package ml

import (
	"fmt"

	"repro/internal/dataset"
)

// NaiveBayes is a categorical Naïve Bayes classifier operating directly
// on dataset rows (attribute codes) with Laplace smoothing. The remedy
// algorithms use it as the ranker that scores borderline instances for
// preferential sampling and data massaging (§IV-A), exactly as
// Kamiran & Calders do.
type NaiveBayes struct {
	// Alpha is the Laplace smoothing constant; 0 means 1.
	Alpha float64

	schema *dataset.Schema
	prior  [2]float64
	// cond[c][a][v] = P(attr a = v | class c), smoothed.
	cond [2][][]float64
}

// FitDataset trains on the categorical dataset with its sample weights.
func (nb *NaiveBayes) FitDataset(d *dataset.Dataset) error {
	if d.Len() == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	alpha := nb.Alpha
	if alpha <= 0 {
		alpha = 1
	}
	nb.schema = d.Schema
	na := len(d.Schema.Attrs)
	var classW [2]float64
	var counts [2][][]float64
	for c := 0; c < 2; c++ {
		counts[c] = make([][]float64, na)
		for a := 0; a < na; a++ {
			counts[c][a] = make([]float64, d.Schema.Attrs[a].Cardinality())
		}
	}
	for i, row := range d.Rows {
		c := int(d.Labels[i])
		w := d.Weight(i)
		classW[c] += w
		for a, v := range row {
			counts[c][a][v] += w
		}
	}
	total := classW[0] + classW[1]
	for c := 0; c < 2; c++ {
		nb.prior[c] = (classW[c] + alpha) / (total + 2*alpha)
		nb.cond[c] = make([][]float64, na)
		for a := 0; a < na; a++ {
			card := float64(len(counts[c][a]))
			nb.cond[c][a] = make([]float64, len(counts[c][a]))
			for v := range counts[c][a] {
				nb.cond[c][a][v] = (counts[c][a][v] + alpha) / (classW[c] + alpha*card)
			}
		}
	}
	return nil
}

// ProbaRow returns P(y=1 | row) for a categorical row.
func (nb *NaiveBayes) ProbaRow(row []int32) float64 {
	if nb.schema == nil {
		return 0.5
	}
	// Work in probability space with per-step renormalization; the
	// attribute counts are small enough that underflow is not a risk
	// after normalizing each step.
	p1, p0 := nb.prior[1], nb.prior[0]
	for a, v := range row {
		p1 *= nb.cond[1][a][v]
		p0 *= nb.cond[0][a][v]
		s := p0 + p1
		if s > 0 {
			p0 /= s
			p1 /= s
		}
	}
	if p0+p1 == 0 {
		return 0.5
	}
	return p1 / (p0 + p1)
}

// ProbaDataset scores every instance of d.
func (nb *NaiveBayes) ProbaDataset(d *dataset.Dataset) []float64 {
	out := make([]float64, d.Len())
	for i := range d.Rows {
		out[i] = nb.ProbaRow(d.Rows[i])
	}
	return out
}
