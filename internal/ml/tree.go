package ml

import (
	"context"
	"math/rand" //lint:allow determinism consumes injected *rand.Rand; construction only via stats.NewRNG
	"sort"

	"repro/internal/stats"
)

// TreeParams configures a CART decision tree.
type TreeParams struct {
	// MaxDepth limits the tree depth; 0 means the default of 12.
	MaxDepth int
	// MinLeafWeight is the minimum total sample weight in a leaf
	// (default 1).
	MinLeafWeight float64
	// MinSplitWeight is the minimum total sample weight required to
	// attempt a split (default 2).
	MinSplitWeight float64
	// MaxFeatures, when positive, samples that many candidate features
	// per split (used by the random forest). 0 considers all features.
	MaxFeatures int
	// Seed drives the feature subsampling.
	Seed int64
}

func (p TreeParams) withDefaults() TreeParams {
	if p.MaxDepth <= 0 {
		p.MaxDepth = 12
	}
	if p.MinLeafWeight <= 0 {
		p.MinLeafWeight = 1
	}
	if p.MinSplitWeight <= 0 {
		p.MinSplitWeight = 2
	}
	return p
}

// DecisionTree is a weighted binary CART classifier using Gini
// impurity and threshold splits. Categorical inputs arrive one-hot or
// ordinal encoded, so threshold splits express both equality and
// ordering tests.
type DecisionTree struct {
	Params TreeParams
	root   *treeNode
	// importance accumulates the total weighted Gini decrease per
	// feature during training.
	importance []float64
}

type treeNode struct {
	leaf    bool
	prob    float64 // P(y=1) at this node
	feature int
	thresh  float64
	left    *treeNode // feature value <= thresh
	right   *treeNode
}

// NewDecisionTree returns an untrained tree with the given parameters.
func NewDecisionTree(p TreeParams) *DecisionTree {
	return &DecisionTree{Params: p.withDefaults()}
}

// Fit trains the tree.
func (t *DecisionTree) Fit(x [][]float64, y []float64, w []float64) error {
	return t.FitCtx(context.Background(), x, y, w)
}

// FitCtx is Fit with a cancellation check at every split node; on
// cancellation the partially built tree is discarded and ctx.Err() is
// returned.
func (t *DecisionTree) FitCtx(ctx context.Context, x [][]float64, y []float64, w []float64) error {
	if err := checkTrainingInput(x, y, w); err != nil {
		return err
	}
	if w == nil {
		w = ones(len(x))
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	t.importance = make([]float64, len(x[0]))
	rng := stats.NewRNG(t.Params.Seed)
	t.root = t.build(ctx, x, y, w, idx, 0, rng)
	if err := ctx.Err(); err != nil {
		t.root = nil // a truncated tree is a silently different model
		return err
	}
	return nil
}

// FeatureImportance returns the per-feature share of the total Gini
// impurity decrease accumulated over the tree's splits (normalized to
// sum to 1; nil before training, all-zero for a stump).
func (t *DecisionTree) FeatureImportance() []float64 {
	if t.importance == nil {
		return nil
	}
	out := make([]float64, len(t.importance))
	var total float64
	for _, v := range t.importance {
		total += v
	}
	if total == 0 {
		return out
	}
	for i, v := range t.importance {
		out[i] = v / total
	}
	return out
}

func nodeStats(y, w []float64, idx []int) (wt, wp float64) {
	for _, i := range idx {
		wt += w[i]
		wp += w[i] * y[i]
	}
	return wt, wp
}

func gini(wt, wp float64) float64 {
	if wt <= 0 {
		return 0
	}
	p := wp / wt
	return 2 * p * (1 - p)
}

func (t *DecisionTree) build(ctx context.Context, x [][]float64, y, w []float64, idx []int, depth int, rng *rand.Rand) *treeNode {
	wt, wp := nodeStats(y, w, idx)
	n := &treeNode{leaf: true}
	if wt > 0 {
		n.prob = wp / wt
	}
	if depth >= t.Params.MaxDepth || wt < t.Params.MinSplitWeight ||
		n.prob == 0 || n.prob == 1 || ctx.Err() != nil {
		return n
	}
	feat, thresh, gain, ok := t.bestSplit(x, y, w, idx, wt, wp, rng)
	if !ok {
		return n
	}
	// Weighted impurity decrease credits the chosen feature.
	t.importance[feat] += gain * wt
	var left, right []int
	for _, i := range idx {
		if x[i][feat] <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return n
	}
	n.leaf = false
	n.feature = feat
	n.thresh = thresh
	n.left = t.build(ctx, x, y, w, left, depth+1, rng)
	n.right = t.build(ctx, x, y, w, right, depth+1, rng)
	return n
}

// bestSplit finds the (feature, threshold) pair with the largest Gini
// decrease. Because the encoded features take few distinct values, it
// histograms per value rather than sorting instances.
func (t *DecisionTree) bestSplit(x [][]float64, y, w []float64, idx []int, wt, wp float64, rng *rand.Rand) (int, float64, float64, bool) {
	nf := len(x[idx[0]])
	feats := make([]int, nf)
	for i := range feats {
		feats[i] = i
	}
	if t.Params.MaxFeatures > 0 && t.Params.MaxFeatures < nf {
		feats = stats.SampleWithoutReplacement(rng, nf, t.Params.MaxFeatures)
		sort.Ints(feats)
	}
	parent := gini(wt, wp)
	bestGain := 1e-12
	bestFeat, bestThresh := -1, 0.0
	type acc struct{ w, wp float64 }
	for _, f := range feats {
		hist := map[float64]acc{}
		for _, i := range idx {
			a := hist[x[i][f]]
			a.w += w[i]
			a.wp += w[i] * y[i]
			hist[x[i][f]] = a
		}
		if len(hist) < 2 {
			continue
		}
		vals := make([]float64, 0, len(hist))
		for v := range hist {
			vals = append(vals, v)
		}
		sort.Float64s(vals)
		var lw, lwp float64
		for k := 0; k < len(vals)-1; k++ {
			a := hist[vals[k]]
			lw += a.w
			lwp += a.wp
			rw, rwp := wt-lw, wp-lwp
			if lw < t.Params.MinLeafWeight || rw < t.Params.MinLeafWeight {
				continue
			}
			gain := parent - (lw*gini(lw, lwp)+rw*gini(rw, rwp))/wt
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThresh = (vals[k] + vals[k+1]) / 2
			}
		}
	}
	return bestFeat, bestThresh, bestGain, bestFeat >= 0
}

// PredictProba returns the training-set positive fraction of the leaf x
// falls into.
func (t *DecisionTree) PredictProba(x []float64) float64 {
	n := t.root
	if n == nil {
		return 0.5
	}
	for !n.leaf {
		if x[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.prob
}

// Predict thresholds PredictProba at 0.5.
func (t *DecisionTree) Predict(x []float64) int { return threshold(t.PredictProba(x)) }

// Depth returns the depth of the trained tree (0 for a stump/untrained).
func (t *DecisionTree) Depth() int { return depthOf(t.root) }

func depthOf(n *treeNode) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}
