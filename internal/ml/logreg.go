package ml

import (
	"context"
	"math"
)

// LogRegParams configures logistic regression.
type LogRegParams struct {
	// LearningRate for gradient descent; 0 means 0.5.
	LearningRate float64
	// Epochs of full-batch descent; 0 means 200.
	Epochs int
	// L2 regularization strength; 0 disables (negative is invalid).
	L2 float64
	// Seed drives nothing today (the solver is deterministic) but is
	// kept for interface symmetry with the stochastic learners.
	Seed int64
}

func (p LogRegParams) withDefaults() LogRegParams {
	if p.LearningRate <= 0 {
		p.LearningRate = 0.5
	}
	if p.Epochs <= 0 {
		p.Epochs = 200
	}
	return p
}

// LogisticRegression is an L2-regularized linear classifier trained by
// weighted full-batch gradient descent on the cross-entropy loss.
type LogisticRegression struct {
	Params LogRegParams
	// Weights holds the learned coefficients; Bias the intercept.
	Weights []float64
	Bias    float64
}

// NewLogisticRegression returns an untrained model.
func NewLogisticRegression(p LogRegParams) *LogisticRegression {
	return &LogisticRegression{Params: p.withDefaults()}
}

// Fit trains by full-batch gradient descent. Sample weights scale each
// instance's gradient contribution.
func (l *LogisticRegression) Fit(x [][]float64, y []float64, w []float64) error {
	return l.FitCtx(context.Background(), x, y, w)
}

// FitCtx is Fit with a per-epoch cancellation check; on cancellation
// the partially descended weights remain and ctx.Err() is returned.
func (l *LogisticRegression) FitCtx(ctx context.Context, x [][]float64, y []float64, w []float64) error {
	if err := checkTrainingInput(x, y, w); err != nil {
		return err
	}
	if w == nil {
		w = ones(len(x))
	}
	nf := len(x[0])
	l.Weights = make([]float64, nf)
	l.Bias = 0
	var totalW float64
	for _, wi := range w {
		totalW += wi
	}
	if totalW == 0 {
		totalW = 1
	}
	grad := make([]float64, nf)
	lr := l.Params.LearningRate
	for epoch := 0; epoch < l.Params.Epochs; epoch++ {
		if err := epochTick(ctx, epoch); err != nil {
			return err
		}
		for i := range grad {
			grad[i] = 0
		}
		var gradB float64
		for i := range x {
			p := l.PredictProba(x[i])
			e := w[i] * (p - y[i])
			for j, xv := range x[i] {
				if xv != 0 {
					grad[j] += e * xv
				}
			}
			gradB += e
		}
		for j := range l.Weights {
			g := grad[j]/totalW + l.Params.L2*l.Weights[j]
			l.Weights[j] -= lr * g
		}
		l.Bias -= lr * gradB / totalW
	}
	return nil
}

// PredictProba applies the logistic link to the linear score.
func (l *LogisticRegression) PredictProba(x []float64) float64 {
	z := l.Bias
	for j, wj := range l.Weights {
		z += wj * x[j]
	}
	return 1 / (1 + math.Exp(-z))
}

// Predict thresholds PredictProba at 0.5.
func (l *LogisticRegression) Predict(x []float64) int { return threshold(l.PredictProba(x)) }
