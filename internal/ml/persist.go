package ml

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// This file implements model persistence: trained classifiers
// round-trip through a tagged JSON envelope so a remedied-and-trained
// model can be shipped without its training data. Trees serialize
// their node structure; the linear and neural models their weight
// tensors.

// envelope is the tagged serialization wrapper.
type envelope struct {
	Kind   string          `json:"kind"`
	Params json.RawMessage `json:"params"`
	State  json.RawMessage `json:"state"`
}

// Persistable is implemented by every classifier in this package.
type Persistable interface {
	Classifier
	// MarshalModel returns the kind tag plus parameter and state
	// payloads.
	MarshalModel() (kind string, params, state interface{})
	// UnmarshalModel restores the state payload (params are restored
	// by the registry constructor).
	UnmarshalModel(state json.RawMessage) error
}

// Save writes a trained classifier to w.
func Save(w io.Writer, c Classifier) error {
	p, ok := c.(Persistable)
	if !ok {
		return fmt.Errorf("ml: %T does not support persistence", c)
	}
	kind, params, state := p.MarshalModel()
	pj, err := json.Marshal(params)
	if err != nil {
		return err
	}
	sj, err := json.Marshal(state)
	if err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(envelope{Kind: kind, Params: pj, State: sj})
}

// SaveFile writes a trained classifier to the named file.
func SaveFile(path string, c Classifier) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() //lint:allow errdiscard error-path cleanup; the success path checks the explicit Close below
	if err := Save(f, c); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a classifier written by Save.
func Load(r io.Reader) (Classifier, error) {
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("ml: decoding model envelope: %w", err)
	}
	var c Persistable
	switch env.Kind {
	case "decision_tree":
		var p TreeParams
		if err := json.Unmarshal(env.Params, &p); err != nil {
			return nil, err
		}
		c = NewDecisionTree(p)
	case "random_forest":
		var p ForestParams
		if err := json.Unmarshal(env.Params, &p); err != nil {
			return nil, err
		}
		c = NewRandomForest(p)
	case "logistic_regression":
		var p LogRegParams
		if err := json.Unmarshal(env.Params, &p); err != nil {
			return nil, err
		}
		c = NewLogisticRegression(p)
	case "neural_network":
		var p NNParams
		if err := json.Unmarshal(env.Params, &p); err != nil {
			return nil, err
		}
		c = NewNeuralNetwork(p)
	default:
		return nil, fmt.Errorf("ml: unknown model kind %q", env.Kind)
	}
	if err := c.UnmarshalModel(env.State); err != nil {
		return nil, err
	}
	return c, nil
}

// LoadFile reads a classifier from the named file.
func LoadFile(path string) (Classifier, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //lint:allow errdiscard read-only close carries no information
	return Load(f)
}

// --- Decision tree ----------------------------------------------------

// treeNodeJSON is the serialized form of a tree node (children are
// indices into a flat node array so arbitrarily deep trees avoid
// recursion limits).
type treeNodeJSON struct {
	Leaf    bool    `json:"leaf"`
	Prob    float64 `json:"prob"`
	Feature int     `json:"feature,omitempty"`
	Thresh  float64 `json:"thresh,omitempty"`
	Left    int     `json:"left,omitempty"`
	Right   int     `json:"right,omitempty"`
}

func flattenTree(root *treeNode) []treeNodeJSON {
	if root == nil {
		return nil
	}
	var out []treeNodeJSON
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		idx := len(out)
		out = append(out, treeNodeJSON{Leaf: n.leaf, Prob: n.prob, Feature: n.feature, Thresh: n.thresh})
		if !n.leaf {
			out[idx].Left = walk(n.left)
			out[idx].Right = walk(n.right)
		}
		return idx
	}
	walk(root)
	return out
}

func unflattenTree(nodes []treeNodeJSON) (*treeNode, error) {
	if len(nodes) == 0 {
		return nil, nil
	}
	built := make([]*treeNode, len(nodes))
	// Build bottom-up: children always have larger indices than their
	// parent in the flattening order.
	for i := len(nodes) - 1; i >= 0; i-- {
		j := nodes[i]
		n := &treeNode{leaf: j.Leaf, prob: j.Prob, feature: j.Feature, thresh: j.Thresh}
		if !j.Leaf {
			if j.Left <= i || j.Left >= len(nodes) || j.Right <= i || j.Right >= len(nodes) {
				return nil, fmt.Errorf("ml: corrupt tree serialization at node %d", i)
			}
			n.left = built[j.Left]
			n.right = built[j.Right]
		}
		built[i] = n
	}
	return built[0], nil
}

// MarshalModel implements Persistable.
func (t *DecisionTree) MarshalModel() (string, interface{}, interface{}) {
	return "decision_tree", t.Params, flattenTree(t.root)
}

// UnmarshalModel implements Persistable.
func (t *DecisionTree) UnmarshalModel(state json.RawMessage) error {
	var nodes []treeNodeJSON
	if err := json.Unmarshal(state, &nodes); err != nil {
		return err
	}
	root, err := unflattenTree(nodes)
	if err != nil {
		return err
	}
	t.root = root
	return nil
}

// --- Random forest ----------------------------------------------------

type forestStateJSON struct {
	Trees []forestTreeJSON `json:"trees"`
}

type forestTreeJSON struct {
	Params TreeParams     `json:"params"`
	Nodes  []treeNodeJSON `json:"nodes"`
}

// MarshalModel implements Persistable.
func (f *RandomForest) MarshalModel() (string, interface{}, interface{}) {
	st := forestStateJSON{}
	for _, t := range f.trees {
		st.Trees = append(st.Trees, forestTreeJSON{Params: t.Params, Nodes: flattenTree(t.root)})
	}
	return "random_forest", f.Params, st
}

// UnmarshalModel implements Persistable.
func (f *RandomForest) UnmarshalModel(state json.RawMessage) error {
	var st forestStateJSON
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	f.trees = nil
	for _, tj := range st.Trees {
		root, err := unflattenTree(tj.Nodes)
		if err != nil {
			return err
		}
		f.trees = append(f.trees, &DecisionTree{Params: tj.Params, root: root})
	}
	return nil
}

// --- Logistic regression ----------------------------------------------

type logRegStateJSON struct {
	Weights []float64 `json:"weights"`
	Bias    float64   `json:"bias"`
}

// MarshalModel implements Persistable.
func (l *LogisticRegression) MarshalModel() (string, interface{}, interface{}) {
	return "logistic_regression", l.Params, logRegStateJSON{Weights: l.Weights, Bias: l.Bias}
}

// UnmarshalModel implements Persistable.
func (l *LogisticRegression) UnmarshalModel(state json.RawMessage) error {
	var st logRegStateJSON
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	l.Weights, l.Bias = st.Weights, st.Bias
	return nil
}

// --- Neural network ---------------------------------------------------

type nnStateJSON struct {
	W1 [][]float64 `json:"w1"`
	B1 []float64   `json:"b1"`
	W2 []float64   `json:"w2"`
	B2 float64     `json:"b2"`
}

// MarshalModel implements Persistable.
func (n *NeuralNetwork) MarshalModel() (string, interface{}, interface{}) {
	return "neural_network", n.Params, nnStateJSON{W1: n.w1, B1: n.b1, W2: n.w2, B2: n.b2}
}

// UnmarshalModel implements Persistable.
func (n *NeuralNetwork) UnmarshalModel(state json.RawMessage) error {
	var st nnStateJSON
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	n.w1, n.b1, n.w2, n.b2 = st.W1, st.B1, st.W2, st.B2
	return nil
}
