package ml

import (
	"context"
	"math"

	"repro/internal/stats"
)

// NNParams configures the feed-forward neural network.
type NNParams struct {
	// Hidden is the hidden layer width; 0 means 16.
	Hidden int
	// Epochs over the training set; 0 means 20.
	Epochs int
	// LearningRate for SGD; 0 means 0.05.
	LearningRate float64
	// BatchSize for mini-batch SGD; 0 means 32.
	BatchSize int
	// L2 regularization strength.
	L2 float64
	// Seed drives weight initialization and shuffling.
	Seed int64
}

func (p NNParams) withDefaults() NNParams {
	if p.Hidden <= 0 {
		p.Hidden = 16
	}
	if p.Epochs <= 0 {
		p.Epochs = 20
	}
	if p.LearningRate <= 0 {
		p.LearningRate = 0.05
	}
	if p.BatchSize <= 0 {
		p.BatchSize = 32
	}
	return p
}

// NeuralNetwork is a one-hidden-layer perceptron (ReLU hidden units,
// sigmoid output) trained with weighted mini-batch SGD on cross-entropy
// loss — the MLP classifier of the paper's evaluation.
type NeuralNetwork struct {
	Params NNParams
	// w1[h][j] connects input j to hidden h; b1[h] is its bias.
	w1 [][]float64
	b1 []float64
	// w2[h] connects hidden h to the output; b2 is the output bias.
	w2 []float64
	b2 float64
}

// NewNeuralNetwork returns an untrained network.
func NewNeuralNetwork(p NNParams) *NeuralNetwork {
	return &NeuralNetwork{Params: p.withDefaults()}
}

// Fit trains the network.
func (n *NeuralNetwork) Fit(x [][]float64, y []float64, w []float64) error {
	return n.FitCtx(context.Background(), x, y, w)
}

// FitCtx is Fit with a per-epoch cancellation check; on cancellation
// the partially trained weights remain and ctx.Err() is returned.
func (n *NeuralNetwork) FitCtx(ctx context.Context, x [][]float64, y []float64, w []float64) error {
	if err := checkTrainingInput(x, y, w); err != nil {
		return err
	}
	if w == nil {
		w = ones(len(x))
	}
	rng := stats.NewRNG(n.Params.Seed)
	nf := len(x[0])
	h := n.Params.Hidden
	// He initialization for the ReLU layer.
	scale := math.Sqrt(2 / float64(nf))
	n.w1 = make([][]float64, h)
	n.b1 = make([]float64, h)
	n.w2 = make([]float64, h)
	for i := 0; i < h; i++ {
		n.w1[i] = make([]float64, nf)
		for j := range n.w1[i] {
			n.w1[i][j] = rng.NormFloat64() * scale
		}
		n.w2[i] = rng.NormFloat64() * math.Sqrt(1/float64(h))
	}
	n.b2 = 0

	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	hidden := make([]float64, h)
	lr := n.Params.LearningRate
	for epoch := 0; epoch < n.Params.Epochs; epoch++ {
		if err := epochTick(ctx, epoch); err != nil {
			return err
		}
		stats.Shuffle(rng, idx)
		for start := 0; start < len(idx); start += n.Params.BatchSize {
			end := start + n.Params.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			// Accumulate the batch gradient via per-sample backprop.
			var batchW float64
			for _, i := range idx[start:end] {
				batchW += w[i]
			}
			if batchW == 0 {
				continue
			}
			step := lr / batchW
			for _, i := range idx[start:end] {
				xi := x[i]
				// Forward.
				for hh := 0; hh < h; hh++ {
					z := n.b1[hh]
					for j, v := range xi {
						if v != 0 {
							z += n.w1[hh][j] * v
						}
					}
					if z < 0 {
						z = 0
					}
					hidden[hh] = z
				}
				z2 := n.b2
				for hh := 0; hh < h; hh++ {
					z2 += n.w2[hh] * hidden[hh]
				}
				p := 1 / (1 + math.Exp(-z2))
				// Backward: dL/dz2 = p - y (cross-entropy + sigmoid).
				d2 := w[i] * (p - y[i])
				for hh := 0; hh < h; hh++ {
					gw2 := d2 * hidden[hh]
					d1 := d2 * n.w2[hh]
					n.w2[hh] -= step * (gw2 + n.Params.L2*n.w2[hh])
					if hidden[hh] > 0 { // ReLU gate
						for j, v := range xi {
							if v != 0 {
								n.w1[hh][j] -= step * (d1*v + n.Params.L2*n.w1[hh][j])
							}
						}
						n.b1[hh] -= step * d1
					}
				}
				n.b2 -= step * d2
			}
		}
	}
	return nil
}

// PredictProba runs the forward pass.
func (n *NeuralNetwork) PredictProba(x []float64) float64 {
	if n.w1 == nil {
		return 0.5
	}
	z2 := n.b2
	for hh := range n.w1 {
		z := n.b1[hh]
		for j, v := range x {
			if v != 0 {
				z += n.w1[hh][j] * v
			}
		}
		if z > 0 {
			z2 += n.w2[hh] * z
		}
	}
	return 1 / (1 + math.Exp(-z2))
}

// Predict thresholds PredictProba at 0.5.
func (n *NeuralNetwork) Predict(x []float64) int { return threshold(n.PredictProba(x)) }
