package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/faults"
	"repro/internal/serve"
	"repro/internal/synth"
)

// testNode is one in-process fleet member: a durable follower server,
// its cluster node, and an httptest listener mounting both handlers
// the way cmd/remedyd does.
type testNode struct {
	id     string
	dir    string
	store  *durable.Store
	srv    *serve.Server
	node   *Node
	http   *httptest.Server
	client *serve.Client
}

// fleet builds n in-process nodes named in sorted order (node-a,
// node-b, …) sharing one peer map. The lowest ID bootstraps itself
// leader at construction. mutate, when non-nil, adjusts each node's
// configs before it is built.
func fleet(t *testing.T, ids []string, mutate func(id string, scfg *serve.Config, ccfg *Config)) map[string]*testNode {
	t.Helper()
	ctx := context.Background()

	// The peer map must exist before any node does, so each node's
	// listener starts first with a swappable handler and the real mux is
	// installed once the node is built.
	peers := make(map[string]string, len(ids))
	holders := make(map[string]*atomic.Value, len(ids))
	servers := make(map[string]*httptest.Server, len(ids))
	for _, id := range ids {
		holder := &atomic.Value{}
		hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if h, ok := holder.Load().(http.Handler); ok {
				h.ServeHTTP(w, r)
				return
			}
			w.WriteHeader(http.StatusServiceUnavailable)
		}))
		peers[id] = hs.URL
		holders[id] = holder
		servers[id] = hs
		t.Cleanup(hs.Close)
	}

	nodes := make(map[string]*testNode, len(ids))
	for _, id := range ids {
		scfg := serve.Config{NodeID: id, Workers: 2, QueueDepth: 8}
		ccfg := Config{ID: id, Peers: peers, LeaseTicks: 2, StealMax: -1}
		if mutate != nil {
			mutate(id, &scfg, &ccfg)
		}
		dir := t.TempDir()
		store, err := durable.Open(ctx, dir, false)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := serve.NewFollower(ctx, scfg, store)
		if err != nil {
			t.Fatal(err)
		}
		node, err := New(ctx, ccfg, srv)
		if err != nil {
			t.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.Handle("/cluster/", node.Handler())
		mux.Handle("/", srv.Handler())
		holders[id].Store(http.Handler(mux))

		tn := &testNode{
			id: id, dir: dir, store: store, srv: srv, node: node, http: servers[id],
			client: serve.NewRetryingClient(peers[id], serve.RetryPolicy{
				MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond,
			}),
		}
		nodes[id] = tn
		t.Cleanup(func() {
			tn.node.Close()
			sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := tn.srv.Shutdown(sctx); err != nil {
				t.Errorf("shutdown %s: %v", tn.id, err)
			}
			if err := tn.store.Close(); err != nil {
				t.Errorf("close store %s: %v", tn.id, err)
			}
		})
	}
	return nodes
}

// uploadCompas registers a synthetic COMPAS dataset through c.
func uploadCompas(t *testing.T, c *serve.Client, n int, seed int64) serve.DatasetInfo {
	t.Helper()
	d := synth.CompasN(n, seed)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	info, err := c.UploadDataset(context.Background(), &buf, "compas-test",
		"two_year_recid", []string{"age", "race", "sex"})
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// syncFleet ticks the leader until every live follower holds its whole
// journal (or the deadline passes).
func syncFleet(t *testing.T, ctx context.Context, leader *testNode, followers ...*testNode) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		leader.node.Tick(ctx)
		want := leader.store.Journal().Sequence()
		synced := true
		for _, f := range followers {
			if f.store.Journal().Sequence() != want {
				synced = false
			}
		}
		if synced {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet did not sync to seq %d", want)
		}
	}
}

func assertNoGoroutineLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, baseline %d", n, base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestBootstrapElectsLowestIDAndForwards(t *testing.T) {
	ctx := context.Background()
	nodes := fleet(t, []string{"node-a", "node-b", "node-c"}, nil)
	a, b := nodes["node-a"], nodes["node-b"]

	if role, term, leader := a.node.Role(); role != RoleLeader || term != 1 || leader != "node-a" {
		t.Fatalf("node-a = %s term %d leader %s, want leader/1/node-a", role, term, leader)
	}
	if ready, _ := a.srv.Readiness(); !ready {
		t.Fatal("bootstrap leader is not ready")
	}
	if role, _, _ := b.node.Role(); role != RoleFollower {
		t.Fatalf("node-b role = %s, want follower", role)
	}
	if ready, reason := b.srv.Readiness(); ready {
		t.Fatalf("follower reports ready (%s)", reason)
	}

	// One heartbeat teaches the followers who leads; from then on API
	// traffic against a follower forwards there: the job lands on
	// node-a even though the client never heard of it.
	a.node.Tick(ctx)
	info := uploadCompas(t, b.client, 200, 7)
	st, err := b.client.SubmitJob(ctx, serve.JobRequest{Kind: "train", DatasetID: info.ID})
	if err != nil {
		t.Fatalf("submit via follower: %v", err)
	}
	if st, err = b.client.Wait(ctx, st.ID, 5*time.Millisecond); err != nil || st.State != serve.StateDone {
		t.Fatalf("job via follower: %+v, %v", st, err)
	}
	if _, err := a.srv.Registry().Get(info.ID); err != nil {
		t.Fatal("dataset did not land on the leader")
	}
	if got := a.srv.Metrics().Snapshot().Counters["serve.http_requests"]; got == 0 {
		t.Fatal("leader saw no forwarded traffic")
	}
}

func TestReplicationMirrorsJournalByteForByte(t *testing.T) {
	ctx := context.Background()
	nodes := fleet(t, []string{"node-a", "node-b", "node-c"}, nil)
	a, b, c := nodes["node-a"], nodes["node-b"], nodes["node-c"]

	info := uploadCompas(t, a.client, 200, 7)
	for i := 0; i < 3; i++ {
		st, err := a.client.SubmitJob(ctx, serve.JobRequest{
			Kind: "train", DatasetID: info.ID, Seed: int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		if st, err = a.client.Wait(ctx, st.ID, 5*time.Millisecond); err != nil || st.State != serve.StateDone {
			t.Fatalf("job %d: %+v, %v", i, st, err)
		}
	}

	syncFleet(t, ctx, a, b, c)

	want, err := os.ReadFile(a.store.Journal().Path())
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("leader journal is empty")
	}
	for _, f := range []*testNode{b, c} {
		got, err := os.ReadFile(f.store.Journal().Path())
		if err != nil {
			t.Fatal(err)
		}
		// Positional replication re-marshals the same records in the
		// same order through the same framing: the files must be
		// byte-identical, not merely equivalent.
		if !bytes.Equal(got, want) {
			t.Fatalf("%s journal differs from leader's (%d vs %d bytes)", f.id, len(got), len(want))
		}
	}
	if lag := a.srv.Metrics().Snapshot().Gauges["cluster.replication_lag"]; lag != 0 {
		t.Fatalf("replication lag = %v after sync, want 0", lag)
	}
}

func TestFollowerPromotesAfterLeaseAndDeposesOldLeader(t *testing.T) {
	ctx := context.Background()
	nodes := fleet(t, []string{"node-a", "node-b", "node-c"}, nil)
	a, b, c := nodes["node-a"], nodes["node-b"], nodes["node-c"]
	syncFleet(t, ctx, a, b, c)

	// node-a goes silent (we stop ticking it). node-b is first in rank
	// among {b, c}, so its budget is 1 lease = 2 ticks; the third
	// silent tick promotes it.
	for i := 0; i < 3; i++ {
		b.node.Tick(ctx)
	}
	if role, term, leader := b.node.Role(); role != RoleLeader || term != 2 || leader != "node-b" {
		t.Fatalf("node-b = %s term %d leader %s, want leader/2/node-b", role, term, leader)
	}
	if ready, reason := b.srv.Readiness(); !ready {
		t.Fatalf("promoted leader not ready: %s", reason)
	}

	// node-b's first leader tick heartbeats term 2 everywhere: node-c
	// adopts it, and node-a — still calling itself term-1 leader — is
	// deposed on contact and immediately rejoins live: the retrying
	// client's second delivery finds a deposed node at the current term,
	// which demotes its engine and re-enters as node-b's follower. No
	// restart anywhere.
	b.node.Tick(ctx)
	if _, term, leader := c.node.Role(); term != 2 || leader != "node-b" {
		t.Fatalf("node-c sees term %d leader %s, want 2/node-b", term, leader)
	}
	if role, term, leader := a.node.Role(); role != RoleFollower || term != 2 || leader != "node-b" {
		t.Fatalf("node-a = %s term %d leader %s, want follower/2/node-b (deposed then rejoined)", role, term, leader)
	}
	if ready, reason := a.srv.Readiness(); ready || !strings.Contains(reason, "follower of node-b") {
		t.Fatalf("rejoined node readiness = %v %q, want not-ready follower", ready, reason)
	}
	if _, err := a.client.Readyz(ctx); err == nil {
		t.Fatal("rejoined follower's readyz did not 503")
	}

	// The transition is on the record: node-a was deposed first, then
	// rejoined — both as events and counters.
	sawDeposed, sawRejoined := false, false
	for _, ev := range a.node.events.Snapshot() {
		switch ev.Kind {
		case "deposed":
			sawDeposed = true
		case "rejoined":
			sawRejoined = sawDeposed // order matters: depose precedes rejoin
		}
	}
	if !sawDeposed || !sawRejoined {
		t.Fatalf("event log missing the depose→rejoin sequence (deposed=%v rejoined=%v)", sawDeposed, sawRejoined)
	}
	if got := a.srv.Metrics().Snapshot().Counters["cluster.rejoins"]; got != 1 {
		t.Fatalf("rejoins on node-a = %d, want 1", got)
	}

	// A rejoined follower's tick counts the lease like any other
	// follower — it must not fight the new leader.
	a.node.Tick(ctx)
	if role, _, _ := a.node.Role(); role != RoleFollower {
		t.Fatal("rejoined follower left the follower role on its first tick")
	}
	if got := b.srv.Metrics().Snapshot().Counters["cluster.promotions"]; got != 1 {
		t.Fatalf("promotions on node-b = %d, want 1", got)
	}
	if got := a.srv.Metrics().Snapshot().Counters["cluster.stepdowns"]; got != 1 {
		t.Fatalf("stepdowns on node-a = %d, want 1", got)
	}
}

func TestDatasetShardPushAndFetchOnMiss(t *testing.T) {
	ctx := context.Background()
	nodes := fleet(t, []string{"node-a", "node-b", "node-c"}, nil)
	a := nodes["node-a"]

	info := uploadCompas(t, a.client, 200, 7)
	roster := []string{"node-a", "node-b", "node-c"}
	owner := Owner(info.ID, roster)

	// The leader's tick pushes the spilled dataset to its shard owner.
	a.node.Tick(ctx)
	if owner != "node-a" {
		own := nodes[owner]
		if _, err := own.srv.Registry().Get(info.ID); err != nil {
			t.Fatalf("owner %s does not hold the pushed dataset: %v", owner, err)
		}
		if _, err := own.store.LoadDataset(ctx, info.ID); err != nil {
			t.Fatalf("owner %s did not spill the pushed dataset: %v", owner, err)
		}
	}

	// A node with no local copy fetches on miss — from whoever holds
	// it.
	for _, id := range roster {
		n := nodes[id]
		if _, err := n.srv.Registry().Get(info.ID); err == nil {
			continue
		}
		if err := n.node.fetchDataset(ctx, info.ID); err != nil {
			t.Fatalf("%s fetch-on-miss: %v", id, err)
		}
		if _, err := n.srv.Registry().Get(info.ID); err != nil {
			t.Fatalf("%s still missing dataset after fetch: %v", id, err)
		}
	}

	// Fetching a dataset nobody holds fails with the last error.
	if err := a.node.fetchDataset(ctx, "ds-0000000000000000"); err == nil {
		t.Fatal("fetch of unknown dataset succeeded")
	}
}

func TestWorkStealingRunsQueuedJobOnFollower(t *testing.T) {
	ctx := context.Background()
	nodes := fleet(t, []string{"node-a", "node-b"}, func(id string, scfg *serve.Config, ccfg *Config) {
		scfg.Workers = 1
		ccfg.StealMax = 1
	})
	a, b := nodes["node-a"], nodes["node-b"]
	info := uploadCompas(t, a.client, 200, 7)

	// Pin node-a's only worker inside the first job, so the second one
	// stays queued and stealable.
	entered := make(chan struct{}, 4)
	gate := make(chan struct{})
	faults.Set(faults.ServeJob, func(any) error {
		entered <- struct{}{}
		<-gate
		return nil
	})
	t.Cleanup(func() { faults.Clear(faults.ServeJob) })
	defer close(gate)

	st1, err := a.client.SubmitJob(ctx, serve.JobRequest{Kind: "train", DatasetID: info.ID, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	st2, err := a.client.SubmitJob(ctx, serve.JobRequest{Kind: "train", DatasetID: info.ID, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Alternate ticks (the leader's heartbeat keeps the follower's
	// promotion clock at zero) until the stolen job lands.
	deadline := time.Now().Add(10 * time.Second)
	for {
		a.node.Tick(ctx)
		b.node.Tick(ctx)
		st, err := a.client.Job(ctx, st2.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == serve.StateDone {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("stolen job ended %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("stolen job still %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The stolen job's result is served by the leader even though a
	// follower computed it; the first job is still pinned.
	var tr serve.TrainResult
	if err := a.client.Result(ctx, st2.ID, &tr); err != nil {
		t.Fatalf("stolen job result: %v", err)
	}
	if tr.TrainRows == 0 {
		t.Fatalf("stolen result empty: %+v", tr)
	}
	if st, err := a.client.Job(ctx, st1.ID); err != nil || st.State != serve.StateRunning {
		t.Fatalf("pinned job = %+v, %v; want still running", st, err)
	}
	if got := b.srv.Metrics().Snapshot().Counters["cluster.steals"]; got != 1 {
		t.Fatalf("steals on node-b = %d, want 1", got)
	}
	if got := a.srv.Metrics().Snapshot().Counters["serve.jobs_stolen"]; got != 1 {
		t.Fatalf("jobs_stolen on node-a = %d, want 1", got)
	}

	close(entered)
}

func TestStealFencedByTerm(t *testing.T) {
	ctx := context.Background()
	nodes := fleet(t, []string{"node-a", "node-b"}, nil)
	a := nodes["node-a"]

	// A steal carrying a stale term is refused before it can touch the
	// queue.
	body := []byte(`{"term": 0, "node": "node-b"}`)
	var resp stealResponse
	err := serve.NewClient(a.http.URL).DoJSON(ctx, http.MethodPost, "/cluster/steal", body, &resp)
	if err == nil {
		t.Fatal("stale-term steal was accepted")
	}
	if got := a.srv.Metrics().Snapshot().Counters["cluster.steal_rejected"]; got != 1 {
		t.Fatalf("steal_rejected = %d, want 1", got)
	}
}

func TestOwnerIsStableAndBalanced(t *testing.T) {
	roster := []string{"node-c", "node-a", "node-b"} // order must not matter
	counts := map[string]int{}
	for i := 0; i < 64; i++ {
		id := string(rune('a'+i%26)) + "-dataset"
		o1 := Owner(id+string(rune('0'+i/26)), roster)
		o2 := Owner(id+string(rune('0'+i/26)), []string{"node-a", "node-b", "node-c"})
		if o1 != o2 {
			t.Fatalf("owner depends on roster order: %s vs %s", o1, o2)
		}
		counts[o1]++
	}
	if len(counts) < 2 {
		t.Fatalf("ownership did not spread: %v", counts)
	}
	if Owner("ds-x", nil) != "" {
		t.Fatal("empty roster should own nothing")
	}
}

func TestStolenJobRequeuedAfterStealerSilence(t *testing.T) {
	ctx := context.Background()
	nodes := fleet(t, []string{"node-a", "node-b"}, func(id string, scfg *serve.Config, ccfg *Config) {
		scfg.Workers = 1
		ccfg.StealTicks = 2
	})
	a := nodes["node-a"]
	info := uploadCompas(t, a.client, 200, 7)

	entered := make(chan struct{}, 4)
	gate := make(chan struct{})
	faults.Set(faults.ServeJob, func(any) error {
		entered <- struct{}{}
		<-gate
		return nil
	})
	t.Cleanup(func() { faults.Clear(faults.ServeJob) })
	defer close(gate)

	if _, err := a.client.SubmitJob(ctx, serve.JobRequest{Kind: "train", DatasetID: info.ID, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	<-entered
	st2, err := a.client.SubmitJob(ctx, serve.JobRequest{Kind: "train", DatasetID: info.ID, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Steal the queued job directly (as a stealer that then dies
	// without ever reporting).
	grant, err := a.srv.StealQueued(ctx, "node-ghost")
	if err != nil {
		t.Fatal(err)
	}
	id := grant.JobID
	if id != st2.ID {
		t.Fatalf("stole %s, want %s", id, st2.ID)
	}
	a.node.mu.Lock()
	a.node.stolen[id] = 0
	a.node.mu.Unlock()

	// Age the steal past its budget: the leader re-queues the job.
	for i := 0; i < 4; i++ {
		a.node.Tick(ctx)
	}
	st, err := a.client.Job(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.StateQueued {
		t.Fatalf("expired stolen job state = %s, want queued", st.State)
	}
	if st.Attempts != 1 {
		t.Fatalf("expired stolen job attempts = %d, want 1 (one life burned)", st.Attempts)
	}
	if got := a.srv.Metrics().Snapshot().Counters["cluster.steals_expired"]; got != 1 {
		t.Fatalf("steals_expired = %d, want 1", got)
	}

	// The ghost stealer finally reports, carrying the attempt it was
	// handed. The job's re-queued copy lives on attempt 1, so the term
	// alone cannot fence this result — the attempt number does.
	err = a.srv.CompleteStolen(ctx, id, serve.StateDone, "", nil, "node-ghost", 0, nil)
	if !errors.Is(err, serve.ErrStaleAttempt) {
		t.Fatalf("late steal result: err = %v, want ErrStaleAttempt", err)
	}
	if st, err = a.client.Job(ctx, id); err != nil || st.State != serve.StateQueued || st.Attempts != 1 {
		t.Fatalf("job after fenced result = %+v, %v; want still queued on attempt 1", st, err)
	}

	// The same report over the wire: a 409, and the stolen table keeps
	// its entry — which by now tracks a newer steal of the same job,
	// not the ghost's.
	a.node.mu.Lock()
	a.node.stolen[id] = 0
	a.node.mu.Unlock()
	body, err := json.Marshal(stealResult{Term: 1, Node: "node-ghost", JobID: id, Attempt: 0, Final: serve.StateDone})
	if err != nil {
		t.Fatal(err)
	}
	if err := serve.NewClient(a.http.URL).DoJSON(ctx, http.MethodPost, "/cluster/steal/result", body, nil); err == nil {
		t.Fatal("stale-attempt steal result was accepted over HTTP")
	}
	a.node.mu.Lock()
	_, tracked := a.node.stolen[id]
	a.node.mu.Unlock()
	if !tracked {
		t.Fatal("stale result evicted the newer steal's tracking entry")
	}
	if got := a.srv.Metrics().Snapshot().Counters["cluster.steal_results_stale"]; got != 1 {
		t.Fatalf("cluster.steal_results_stale = %d, want 1", got)
	}
	if got := a.srv.Metrics().Snapshot().Counters["serve.steal_results_stale"]; got != 2 {
		t.Fatalf("serve.steal_results_stale = %d, want 2", got)
	}
	close(entered)
}

// TestClusterStatusEndpoint pins the ops surface: role, term, log
// position, and per-peer ack state.
func TestClusterStatusEndpoint(t *testing.T) {
	ctx := context.Background()
	nodes := fleet(t, []string{"node-a", "node-b"}, nil)
	a, b := nodes["node-a"], nodes["node-b"]
	syncFleet(t, ctx, a, b)

	var st Status
	if err := serve.NewClient(a.http.URL).DoJSON(ctx, http.MethodGet, "/cluster/status", nil, &st); err != nil {
		t.Fatal(err)
	}
	if st.Role != RoleLeader || st.Term != 1 || st.NodeID != "node-a" {
		t.Fatalf("leader status = %+v", st)
	}
	if st.Acked["node-b"] != st.Seq {
		t.Fatalf("leader status acked = %v, want node-b at %d", st.Acked, st.Seq)
	}
	if err := serve.NewClient(b.http.URL).DoJSON(ctx, http.MethodGet, "/cluster/status", nil, &st); err != nil {
		t.Fatal(err)
	}
	if st.Role != RoleFollower || st.Leader != "node-a" {
		t.Fatalf("follower status = %+v", st)
	}
}

// TestLeaseFaultStallsLeader pins the cluster.lease.renew fault point:
// a stalled leader sends nothing, and the fleet notices.
func TestLeaseFaultStallsLeader(t *testing.T) {
	ctx := context.Background()
	nodes := fleet(t, []string{"node-a", "node-b"}, nil)
	a, b := nodes["node-a"], nodes["node-b"]
	syncFleet(t, ctx, a, b)

	faults.Set(faults.ClusterLease, func(any) error { return errors.New("injected stall") })
	t.Cleanup(func() { faults.Clear(faults.ClusterLease) })

	// The stalled leader ticks but nothing reaches node-b, whose
	// missed counter climbs to promotion.
	for i := 0; i < 3; i++ {
		a.node.Tick(ctx)
		b.node.Tick(ctx)
	}
	if role, term, _ := b.node.Role(); role != RoleLeader || term != 2 {
		t.Fatalf("node-b = %s term %d, want leader term 2 after stalled lease", role, term)
	}
}

// TestCrashedLeaderWithForkedTailRejoinsAndHeals pins the rejoin path
// for the worst fork: a leader that journals a record, dies before
// replicating it, and restarts after its successor's RecTerm landed at
// the very position the dead record occupies. The two logs are then
// exactly the same length — no length check can see the divergence —
// and only the term-history reconciliation heals it.
func TestCrashedLeaderWithForkedTailRejoinsAndHeals(t *testing.T) {
	ctx := context.Background()
	ids := []string{"node-a", "node-b"}
	peers := make(map[string]string, len(ids))
	holders := make(map[string]*atomic.Value, len(ids))
	dirs := make(map[string]string, len(ids))
	for _, id := range ids {
		holder := &atomic.Value{}
		hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if h, ok := holder.Load().(http.Handler); ok {
				h.ServeHTTP(w, r)
				return
			}
			w.WriteHeader(http.StatusServiceUnavailable)
		}))
		t.Cleanup(hs.Close)
		peers[id] = hs.URL
		holders[id] = holder
		dirs[id] = t.TempDir()
	}

	// build opens one generation of a node over its persistent dir —
	// the fleet helper can't restart a node, so this test wires its own.
	build := func(id string) *testNode {
		t.Helper()
		store, err := durable.Open(ctx, dirs[id], false)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := serve.NewFollower(ctx, serve.Config{NodeID: id, Workers: 1, QueueDepth: 8}, store)
		if err != nil {
			t.Fatal(err)
		}
		node, err := New(ctx, Config{ID: id, Peers: peers, LeaseTicks: 2, StealMax: -1}, srv)
		if err != nil {
			t.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.Handle("/cluster/", node.Handler())
		mux.Handle("/", srv.Handler())
		// Always store the same concrete type (atomic.Value requires it),
		// so the mux and the 503 tombstone below can alternate.
		holders[id].Store(http.HandlerFunc(mux.ServeHTTP))
		return &testNode{
			id: id, dir: dirs[id], store: store, srv: srv, node: node,
			client: serve.NewRetryingClient(peers[id], serve.RetryPolicy{
				MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond,
			}),
		}
	}
	shutdown := func(n *testNode) {
		holders[n.id].Store(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusServiceUnavailable)
		}))
		n.node.Close()
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := n.srv.Shutdown(sctx); err != nil {
			t.Errorf("shutdown %s: %v", n.id, err)
		}
		if err := n.store.Close(); err != nil {
			t.Errorf("close store %s: %v", n.id, err)
		}
	}

	a, b := build("node-a"), build("node-b")
	t.Cleanup(func() { shutdown(b) })

	// Real term-1 history, fully replicated: a dataset and one job run
	// to completion.
	info := uploadCompas(t, a.client, 200, 7)
	st, err := a.client.SubmitJob(ctx, serve.JobRequest{Kind: "train", DatasetID: info.ID, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = a.client.Wait(ctx, st.ID, 5*time.Millisecond); err != nil || st.State != serve.StateDone {
		t.Fatalf("job: %+v, %v", st, err)
	}
	syncFleet(t, ctx, a, b)
	shared := a.store.Journal().Sequence()

	// node-a journals one more record that never goes out, then dies —
	// the on-disk image of a leader that crashed between an append and
	// its next replication tick.
	if err := a.store.Journal().Append(ctx, durable.Record{
		Type: durable.RecState, JobID: st.ID, State: durable.StateQueued,
	}); err != nil {
		t.Fatal(err)
	}
	shutdown(a)

	// node-b waits out the lease and promotes: its term-2 RecTerm lands
	// at position shared — where the dead leader's record sits — so the
	// logs fork at equal length.
	for i := 0; i < 3; i++ {
		b.node.Tick(ctx)
	}
	if role, term, _ := b.node.Role(); role != RoleLeader || term != 2 {
		t.Fatalf("node-b = %s term %d, want leader term 2", role, term)
	}
	if got := b.store.Journal().Sequence(); got != shared+1 {
		t.Fatalf("leader log = %d records after promotion, want %d", got, shared+1)
	}

	// node-a restarts over its forked dir and rejoins as a follower of
	// the term it last witnessed.
	a2 := build("node-a")
	t.Cleanup(func() { shutdown(a2) })
	if role, term, _ := a2.node.Role(); role != RoleFollower || term != 1 {
		t.Fatalf("restarted node-a = %s term %d, want follower term 1", role, term)
	}
	if got, want := a2.store.Journal().Sequence(), b.store.Journal().Sequence(); got != want {
		t.Fatalf("precondition broken: forked logs differ in length (%d vs %d)", got, want)
	}

	// The first heartbeats reconcile: node-a's history says term 1 runs
	// to the end of its log, node-b's says term 2 started at shared —
	// so node-a truncates its forked tail and the stream re-fills it.
	syncFleet(t, ctx, b, a2)

	want, err := os.ReadFile(b.store.Journal().Path())
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(a2.store.Journal().Path())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("rejoined journal differs from leader's (%d vs %d bytes)", len(got), len(want))
	}
	if role, term, leader := a2.node.Role(); role != RoleFollower || term != 2 || leader != "node-b" {
		t.Fatalf("rejoined node-a = %s term %d leader %s, want follower/2/node-b", role, term, leader)
	}
	if got := a2.srv.Metrics().Snapshot().Counters["cluster.log_truncations"]; got != 1 {
		t.Fatalf("log_truncations on rejoined node = %d, want 1", got)
	}
}

// TestConcurrentReplicateRequestsApplyOnce pins applyMu: a timed-out
// send still executing while the retrying client's second attempt
// arrives must not both observe the same log length and double-append
// the shared records.
func TestConcurrentReplicateRequestsApplyOnce(t *testing.T) {
	ctx := context.Background()
	nodes := fleet(t, []string{"node-a", "node-b"}, nil)
	a, b := nodes["node-a"], nodes["node-b"]
	syncFleet(t, ctx, a, b)

	base := b.store.Journal().Sequence()
	before := b.srv.Metrics().Snapshot().Counters["cluster.records_applied"]
	req := replicateRequest{
		Term: 1, Leader: "node-a", LeaderSeq: base + 2, FromSeq: base,
		TermStarts: []termStart{{Term: 1, Leader: "node-a", Seq: 0}},
		Records: []durable.Record{
			{Type: durable.RecState, JobID: "job-000001", State: durable.StateQueued},
			{Type: durable.RecState, JobID: "job-000001", State: durable.StateRunning},
		},
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, status, msg := b.node.applyReplicate(ctx, req)
			if status != http.StatusOK {
				t.Errorf("replicate: %d %s", status, msg)
				return
			}
			if resp.HaveSeq != base+2 {
				t.Errorf("HaveSeq = %d, want %d", resp.HaveSeq, base+2)
			}
		}()
	}
	wg.Wait()
	if got := b.store.Journal().Sequence(); got != base+2 {
		t.Fatalf("journal seq = %d after duplicate sends, want %d", got, base+2)
	}
	if got := b.srv.Metrics().Snapshot().Counters["cluster.records_applied"] - before; got != 2 {
		t.Fatalf("records applied = %d, want exactly 2", got)
	}
}

// TestPromotionRecheckAbortsStaleDecision pins promote's under-lock
// re-check: a promotion decided on stale observations — the wrong
// term, or a lease a heartbeat has since renewed — must not append a
// RecTerm.
func TestPromotionRecheckAbortsStaleDecision(t *testing.T) {
	ctx := context.Background()
	nodes := fleet(t, []string{"node-a", "node-b"}, nil)
	a, b := nodes["node-a"], nodes["node-b"]
	syncFleet(t, ctx, a, b)
	seq := b.store.Journal().Sequence()

	// Decided at a term the node has since moved past.
	if err := b.node.promote(ctx, 0, "node-a", true); err != nil {
		t.Fatal(err)
	}
	// Decided on silence, but the lease clock is back at zero (the
	// syncFleet heartbeats reset it).
	if err := b.node.promote(ctx, 1, "node-a", true); err != nil {
		t.Fatal(err)
	}
	if role, term, leader := b.node.Role(); role != RoleFollower || term != 1 || leader != "node-a" {
		t.Fatalf("node-b = %s term %d leader %s after aborted promotions, want follower/1/node-a", role, term, leader)
	}
	if got := b.store.Journal().Sequence(); got != seq {
		t.Fatalf("aborted promotion appended to the journal (%d → %d)", seq, got)
	}
	if got := b.srv.Metrics().Snapshot().Counters["cluster.promotions"]; got != 0 {
		t.Fatalf("promotions = %d, want 0", got)
	}
}
