package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Handler returns the node's inter-node HTTP surface, mounted by
// cmd/remedyd beside the serve handler (the /cluster/ prefix routes
// here; everything else routes to serve). These endpoints are fleet
// plumbing: they bypass the serve layer's readiness gate — a standby
// follower must accept replication and serve its dataset shards — and
// carry no client-facing compatibility promise.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/replicate", n.handleReplicate)
	mux.HandleFunc("POST /cluster/snapshot", n.handleSnapshot)
	mux.HandleFunc("POST /cluster/steal", n.handleSteal)
	mux.HandleFunc("POST /cluster/steal/result", n.handleStealResult)
	mux.HandleFunc("GET /cluster/datasets/{id}", n.handleDatasetGet)
	mux.HandleFunc("PUT /cluster/datasets/{id}", n.handleDatasetPut)
	mux.HandleFunc("GET /cluster/status", n.handleStatus)
	mux.HandleFunc("GET /cluster/obs", n.handleObs)
	mux.HandleFunc("GET /cluster/events", n.handleEvents)
	return mux
}

// errBody mirrors the serve layer's error envelope so the shared
// retrying client decodes cluster errors the same way.
type errBody struct {
	Error string `json:"error"`
}

func clusterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) //lint:allow errdiscard best-effort write to a disconnecting peer
}

func (n *Node) handleReplicate(w http.ResponseWriter, r *http.Request) {
	var req replicateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		clusterJSON(w, http.StatusBadRequest, errBody{Error: "cluster: bad replicate request: " + err.Error()})
		return
	}
	resp, status, msg := n.applyReplicate(r.Context(), req)
	if status != http.StatusOK {
		w.Header().Set("Retry-After", "1")
		clusterJSON(w, status, errBody{Error: msg})
		return
	}
	clusterJSON(w, http.StatusOK, resp)
}

// handleSnapshot receives a leader's install-snapshot request: a
// follower too far behind (or forked below) a compaction horizon gets
// the whole snapshot file instead of record backfill.
func (n *Node) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var req snapshotRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		clusterJSON(w, http.StatusBadRequest, errBody{Error: "cluster: bad snapshot request: " + err.Error()})
		return
	}
	resp, status, msg := n.applySnapshot(r.Context(), req)
	if status != http.StatusOK {
		w.Header().Set("Retry-After", "1")
		clusterJSON(w, status, errBody{Error: msg})
		return
	}
	clusterJSON(w, http.StatusOK, resp)
}

func (n *Node) handleSteal(w http.ResponseWriter, r *http.Request) {
	var req stealRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		clusterJSON(w, http.StatusBadRequest, errBody{Error: "cluster: bad steal request: " + err.Error()})
		return
	}
	if msg, ok := n.checkStealFence(req.Term); !ok {
		n.metrics.Counter("cluster.steal_rejected").Inc()
		clusterJSON(w, http.StatusConflict, errBody{Error: msg})
		return
	}
	grant, err := n.srv.StealQueued(r.Context(), req.Node)
	if errors.Is(err, serve.ErrNoStealable) {
		clusterJSON(w, http.StatusOK, stealResponse{})
		return
	}
	if err != nil {
		clusterJSON(w, http.StatusInternalServerError, errBody{Error: "cluster: steal: " + err.Error()})
		return
	}
	n.mu.Lock()
	n.stolen[grant.JobID] = 0
	n.mu.Unlock()
	n.events.Append("steal", fmt.Sprintf("job %s stolen by %s (attempt %d)", grant.JobID, req.Node, grant.Attempt))
	n.logger.Info("job stolen", "job", grant.JobID, "by", req.Node, "attempt", grant.Attempt)
	clusterJSON(w, http.StatusOK, stealResponse{
		JobID: grant.JobID, Request: grant.Request, Attempt: grant.Attempt, TraceID: grant.TraceID,
	})
}

func (n *Node) handleStealResult(w http.ResponseWriter, r *http.Request) {
	var res stealResult
	if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
		clusterJSON(w, http.StatusBadRequest, errBody{Error: "cluster: bad steal result: " + err.Error()})
		return
	}
	if msg, ok := n.checkStealFence(res.Term); !ok {
		n.metrics.Counter("cluster.steal_rejected").Inc()
		clusterJSON(w, http.StatusConflict, errBody{Error: msg})
		return
	}
	err := n.srv.CompleteStolen(r.Context(), res.JobID, res.Final, res.Error, res.Result, res.Node, res.Attempt, res.Spans)
	if errors.Is(err, serve.ErrStaleAttempt) {
		// A stealer that outlived its steal timeout: the job was
		// re-queued (and possibly re-stolen) since. Drop the result — and
		// leave the stolen table alone, because its entry for this job ID
		// now tracks the newer steal, not this one.
		n.metrics.Counter("cluster.steal_results_stale").Inc()
		clusterJSON(w, http.StatusConflict, errBody{Error: "cluster: complete stolen: " + err.Error()})
		return
	}
	if err != nil {
		clusterJSON(w, http.StatusInternalServerError, errBody{Error: "cluster: complete stolen: " + err.Error()})
		return
	}
	n.mu.Lock()
	delete(n.stolen, res.JobID)
	n.mu.Unlock()
	n.events.Append("steal-result", fmt.Sprintf("job %s reported %s by %s", res.JobID, res.Final, res.Node))
	clusterJSON(w, http.StatusOK, struct{}{})
}

// handleObs serves this node's own observability snapshot — the
// per-node unit the leader's /metrics/fleet aggregation pulls.
func (n *Node) handleObs(w http.ResponseWriter, _ *http.Request) {
	clusterJSON(w, http.StatusOK, n.srv.LocalNodeObs())
}

// handleEvents serves the bounded operational event log: term
// changes, promotions, depositions, steals — oldest first, with
// monotonic sequence numbers that survive ring wraparound.
func (n *Node) handleEvents(w http.ResponseWriter, _ *http.Request) {
	clusterJSON(w, http.StatusOK, struct {
		NodeID string           `json:"node_id"`
		Events []obs.EventEntry `json:"events"`
	}{n.cfg.ID, n.events.Snapshot()})
}

// checkStealFence admits a steal-protocol request only on the leader
// at the caller's exact term: a stolen job must start and finish under
// one leadership, or not at all.
func (n *Node) checkStealFence(term uint64) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role != RoleLeader {
		return "cluster: not the leader", false
	}
	if term != n.term {
		return "cluster: steal fenced: stale term", false
	}
	return "", true
}

// handleDatasetGet serves one spilled dataset to a peer — the read
// side of fetch-on-miss. Any node that holds the spill serves it, not
// just the shard owner.
func (n *Node) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sd, err := n.srv.Store().LoadDataset(r.Context(), id)
	if err != nil {
		clusterJSON(w, http.StatusNotFound, errBody{Error: "cluster: dataset not held here: " + err.Error()})
		return
	}
	csv, err := os.ReadFile(sd.CSVPath)
	if err != nil {
		clusterJSON(w, http.StatusInternalServerError, errBody{Error: "cluster: read spill: " + err.Error()})
		return
	}
	clusterJSON(w, http.StatusOK, datasetTransfer{Meta: sd.Meta, CSV: string(csv)})
}

// handleDatasetPut receives a shard push and installs the dataset
// locally (spilled, so it survives this node's restart).
func (n *Node) handleDatasetPut(w http.ResponseWriter, r *http.Request) {
	var t datasetTransfer
	if err := json.NewDecoder(r.Body).Decode(&t); err != nil {
		clusterJSON(w, http.StatusBadRequest, errBody{Error: "cluster: bad dataset transfer: " + err.Error()})
		return
	}
	if err := n.installTransfer(r.Context(), r.PathValue("id"), t); err != nil {
		clusterJSON(w, http.StatusBadRequest, errBody{Error: err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// Status is the /cluster/status body: one node's view of the fleet.
type Status struct {
	NodeID string `json:"node_id"`
	Role   string `json:"role"`
	Term   uint64 `json:"term"`
	Leader string `json:"leader,omitempty"`
	// Seq is the local journal length (records held).
	Seq uint64 `json:"seq"`
	// Acked maps each peer to the highest journal sequence the leader
	// knows it holds (leader only; peers with unknown positions are
	// omitted).
	Acked map[string]uint64 `json:"acked,omitempty"`
	// Stolen counts jobs currently lent out (leader); Inflight counts
	// stolen jobs running locally (follower).
	Stolen   int `json:"stolen,omitempty"`
	Inflight int `json:"inflight,omitempty"`
}

func (n *Node) handleStatus(w http.ResponseWriter, _ *http.Request) {
	n.mu.Lock()
	st := Status{
		NodeID:   n.cfg.ID,
		Role:     n.role,
		Term:     n.term,
		Leader:   n.leader,
		Stolen:   len(n.stolen),
		Inflight: n.inflight,
	}
	if n.role == RoleLeader {
		st.Acked = make(map[string]uint64, len(n.peers))
		for id, p := range n.peers {
			if p.known {
				st.Acked[id] = p.acked
			}
		}
	}
	n.mu.Unlock()
	st.Seq = n.journal.Sequence()
	clusterJSON(w, http.StatusOK, st)
}
