package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/faults"
	"repro/internal/serve"
)

// TestChaosLeaderKilledMidIdentifyFailsOver is the headline fleet
// chaos test. A three-node fleet accepts an identify job; the leader
// is killed mid-run — its journal append hangs and then fails exactly
// where a machine death would strike, after level 1 is checkpointed
// and replicated but before level 2 lands. The fleet must notice the
// silence, promote the first-ranked follower within its lease budget,
// resume the job from the replicated checkpoint, and produce an IBS
// byte-identical to an uninterrupted single-node run — with the job
// completing exactly once (the idempotency key survives the handoff)
// and the old leader fenced off when the partition heals.
func TestChaosLeaderKilledMidIdentifyFailsOver(t *testing.T) {
	ctx := context.Background()

	// Registered first, so it runs after every other cleanup has torn
	// the fleet down: the whole exercise must not leak a goroutine.
	baseGoroutines := runtime.NumGoroutine()
	t.Cleanup(func() { assertNoGoroutineLeak(t, baseGoroutines) })

	req := serve.JobRequest{Kind: "identify", TauC: 0.1, MinSize: 20, IdempotencyKey: "chaos-identify"}

	// Baseline: the same job on a single uninterrupted durable node.
	var baseRaw json.RawMessage
	var baseID string
	{
		store, err := durable.Open(ctx, t.TempDir(), false)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := serve.NewDurable(ctx, serve.Config{Workers: 1, QueueDepth: 8}, store)
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(func() {
			sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				t.Errorf("baseline shutdown: %v", err)
			}
			hs.Close()
			if err := store.Close(); err != nil {
				t.Error(err)
			}
		})
		c := serve.NewClient(hs.URL)
		info := uploadCompas(t, c, 1500, 5)
		baseID = info.ID
		req.DatasetID = info.ID
		st, err := c.SubmitJob(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if st, err = c.Wait(ctx, st.ID, 5*time.Millisecond); err != nil || st.State != serve.StateDone {
			t.Fatalf("baseline job: %+v, %v", st, err)
		}
		if err := c.Result(ctx, st.ID, &baseRaw); err != nil {
			t.Fatal(err)
		}
	}

	nodes := fleet(t, []string{"node-a", "node-b", "node-c"}, func(id string, scfg *serve.Config, ccfg *Config) {
		scfg.Workers = 1
	})
	a, b, c := nodes["node-a"], nodes["node-b"], nodes["node-c"]

	info := uploadCompas(t, a.client, 1500, 5)
	if info.ID != baseID {
		t.Fatalf("content-addressed IDs diverged: fleet %s, baseline %s", info.ID, baseID)
	}

	// The kill switch: the second checkpoint append (identify level 2,
	// level 1 already on disk) hangs until released and then fails.
	// Only the leader's own appends pass through this point — records a
	// follower applies from the stream use AppendReplicated — so this
	// deterministically strikes node-a's worker mid-job. Node-b's
	// resumed run re-checkpoints level 2 as append #3+, which passes.
	release := make(chan struct{})
	var releaseOnce sync.Once
	stalled := make(chan struct{})
	var stalledOnce sync.Once
	var checkpoints atomic.Int32
	faults.Set(faults.JournalAppend, func(arg any) error {
		rec, ok := arg.(durable.Record)
		if !ok || rec.Type != durable.RecCheckpoint {
			return nil
		}
		if checkpoints.Add(1) == 2 {
			stalledOnce.Do(func() { close(stalled) })
			<-release
			return errors.New("injected kill: node-a died mid-append")
		}
		return nil
	})
	t.Cleanup(func() {
		faults.Clear(faults.JournalAppend)
		releaseOnce.Do(func() { close(release) })
	})

	st, err := a.client.SubmitJob(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-stalled:
	case <-time.After(10 * time.Second):
		t.Fatal("leader never reached the second checkpoint")
	}

	// Replicate everything the dying leader managed to journal — term,
	// submit, running, checkpoint level 1 — then cut it off: its sends
	// stop leaving the node, exactly as if the machine were gone.
	syncFleet(t, ctx, a, b, c)
	faults.Set(faults.ClusterReplicate, func(arg any) error {
		if s, ok := arg.(string); ok && strings.HasPrefix(s, "node-a→") {
			return errors.New("injected partition: node-a unreachable")
		}
		return nil
	})
	t.Cleanup(func() { faults.Clear(faults.ClusterReplicate) })

	// node-b is first in promotion rank: its budget is one lease
	// (2 ticks) of silence, so the third silent tick promotes it.
	for i := 0; i < 3; i++ {
		b.node.Tick(ctx)
	}
	if role, term, _ := b.node.Role(); role != RoleLeader || term != 2 {
		t.Fatalf("node-b = %s term %d after lease expiry, want leader term 2", role, term)
	}

	// Promotion re-queued the orphaned job from the replicated journal;
	// node-b's worker resumes it from checkpoint level 1 and runs it
	// out. The job must finish exactly once, on attempt 1 (the handoff
	// burned one life, like any interruption).
	got, err := b.client.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != serve.StateDone {
		t.Fatalf("failed-over job ended %s (%s), want done", got.State, got.Error)
	}
	if got.Attempts != 1 {
		t.Fatalf("failed-over job at attempt %d, want 1", got.Attempts)
	}

	// The headline assertion: the fleet's IBS is byte-identical to the
	// uninterrupted single-node run.
	var gotRaw json.RawMessage
	if err := b.client.Result(ctx, st.ID, &gotRaw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(baseRaw, gotRaw) {
		t.Fatalf("failed-over IBS differs from single-node run:\n fleet:    %s\n baseline: %s", gotRaw, baseRaw)
	}

	// New-leader heartbeats teach node-c the new term and depose
	// node-a on contact (the partition blocks a's sends, not b's). The
	// retrying client's next delivery then rejoins the deposed node
	// inline: node-a comes back live as node-b's follower, demoted
	// engine, fenced journal, no restart.
	b.node.Tick(ctx)
	if _, term, leader := c.node.Role(); term != 2 || leader != "node-b" {
		t.Fatalf("node-c sees term %d leader %s, want 2/node-b", term, leader)
	}
	if role, term, leader := a.node.Role(); role != RoleFollower || term != 2 || leader != "node-b" {
		t.Fatalf("node-a = %s term %d leader %s, want follower/2/node-b (deposed then rejoined)", role, term, leader)
	}
	if got := a.srv.Metrics().Snapshot().Counters["cluster.stepdowns"]; got != 1 {
		t.Fatalf("stepdowns on node-a = %d, want 1", got)
	}
	if got := a.srv.Metrics().Snapshot().Counters["cluster.rejoins"]; got != 1 {
		t.Fatalf("rejoins on node-a = %d, want 1", got)
	}
	if ready, reason := a.srv.Readiness(); ready || !strings.Contains(reason, "follower of node-b") {
		t.Fatalf("old leader readiness = %v %q, want not-ready follower", ready, reason)
	}

	// Exactly-once, client-visible: resubmitting the same request —
	// through the follower, which now forwards to node-b — dedups onto
	// the completed job instead of running it again.
	resub, err := c.client.SubmitJob(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resub.ID != st.ID {
		t.Fatalf("post-failover resubmit spawned job %s, want dedup onto %s", resub.ID, st.ID)
	}

	// Exactly-once, on disk: the fleet's journal holds one done
	// transition for the job, and the done record credits node-b.
	doneRecs := 0
	if _, err := durable.ReplayJournal(ctx, b.store.Journal().Path(), func(rec durable.Record) error {
		if rec.Type == durable.RecState && rec.JobID == st.ID && rec.State == string(serve.StateDone) {
			doneRecs++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if doneRecs != 1 {
		t.Fatalf("journal holds %d done records for the job, want exactly 1", doneRecs)
	}

	// Heal the partition. The rejoined follower stays a follower — it
	// never contests term 2, and its tick is an ordinary lease count.
	faults.Clear(faults.ClusterReplicate)
	a.node.Tick(ctx)
	if role, term, leader := a.node.Role(); role != RoleFollower || term != 2 || leader != "node-b" {
		t.Fatalf("healed old leader = %s term %d leader %s, want follower/2/node-b", role, term, leader)
	}

	// Release the kill switch: node-a's stalled worker gets its append
	// failure and fails the job locally — on a fenced, freshly-demoted
	// node, where it can never be acked — letting shutdown drain
	// cleanly.
	releaseOnce.Do(func() { close(release) })
}
