package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/faults"
	"repro/internal/serve"
	"repro/internal/stats"
)

// This file is the network-fault chaos suite: fleets wired through
// faults.NetFaults, the deterministic lossy network, proving the
// cluster's partition/heal/rejoin claims hold when the wire itself —
// not just a single injection point — misbehaves.

// netFleet builds a fleet whose inter-node traffic (replication,
// steals, dataset pushes, forwarding) all flows through nf. The
// test's own clients talk to each node directly, like an external
// caller outside the faulty network.
func netFleet(t *testing.T, ids []string, nf *faults.NetFaults, mutate func(id string, scfg *serve.Config, ccfg *Config)) map[string]*testNode {
	t.Helper()
	return fleet(t, ids, func(id string, scfg *serve.Config, ccfg *Config) {
		hosts := make(map[string]string, len(ccfg.Peers))
		for pid, u := range ccfg.Peers {
			hosts[strings.TrimPrefix(u, "http://")] = pid
		}
		ccfg.HTTP = nf.Client(id, hosts, nil)
		// Fast retries and no breaker: partition tests drive many
		// failed sends and must not sleep out production backoffs.
		ccfg.Retry = serve.RetryPolicy{
			MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond,
			BreakerThreshold: -1,
		}
		if mutate != nil {
			mutate(id, scfg, ccfg)
		}
	})
}

// spreadDataset makes sure every node holds the dataset locally, so a
// later partition cannot turn a fetch-on-miss into a test artifact.
func spreadDataset(t *testing.T, ctx context.Context, nodes map[string]*testNode, id string) {
	t.Helper()
	for _, n := range nodes {
		if _, err := n.srv.Registry().Get(id); err == nil {
			continue
		}
		if err := n.node.fetchDataset(ctx, id); err != nil {
			t.Fatalf("%s fetch dataset: %v", n.id, err)
		}
	}
}

// TestChaosNetSymmetricPartitionHealsByteIdentical isolates one
// follower behind a symmetric partition while the leader keeps
// serving, then heals the link and proves replication converges the
// isolated node to a byte-identical journal — the partition cost it
// nothing but latency.
func TestChaosNetSymmetricPartitionHealsByteIdentical(t *testing.T) {
	ctx := context.Background()
	nf := faults.NewNetFaults(stats.NewRNG(11))
	nodes := netFleet(t, []string{"node-a", "node-b", "node-c"}, nf, nil)
	a, b, c := nodes["node-a"], nodes["node-b"], nodes["node-c"]

	info := uploadCompas(t, a.client, 400, 3)
	spreadDataset(t, ctx, nodes, info.ID)
	syncFleet(t, ctx, a, b, c)

	// node-c drops off the network entirely (both directions, both
	// peers) while the leader keeps accepting and replicating work.
	nf.Partition("node-a", "node-c")
	nf.Partition("node-b", "node-c")

	st, err := a.client.SubmitJob(ctx, serve.JobRequest{
		Kind: "identify", DatasetID: info.ID, TauC: 0.1, MinSize: 20,
		IdempotencyKey: "partition-job",
	})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = a.client.Wait(ctx, st.ID, 5*time.Millisecond); err != nil || st.State != serve.StateDone {
		t.Fatalf("job during partition: %+v, %v", st, err)
	}
	behind := c.store.Journal().Sequence()
	for i := 0; i < 3; i++ {
		a.node.Tick(ctx)
	}
	if got := c.store.Journal().Sequence(); got != behind {
		t.Fatalf("partitioned node's journal advanced %d→%d", behind, got)
	}
	if dropped := nf.CountsFor("node-a", "node-c").Dropped; dropped == 0 {
		t.Fatal("the partition dropped nothing; the fault layer is not wired in")
	}

	// Heal. The same replication stream that was being blackholed now
	// backfills node-c to the tip.
	nf.Heal("node-a", "node-c")
	nf.Heal("node-b", "node-c")
	syncFleet(t, ctx, a, b, c)

	want, err := os.ReadFile(a.store.Journal().Path())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []*testNode{b, c} {
		got, err := os.ReadFile(f.store.Journal().Path())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s journal differs from leader's after heal (%d vs %d bytes)", f.id, len(got), len(want))
		}
	}
	if role, term, leader := c.node.Role(); role != RoleFollower || term != 1 || leader != "node-a" {
		t.Fatalf("healed node-c = %s term %d leader %s, want follower/1/node-a", role, term, leader)
	}
}

// TestChaosNetAsymmetricPartitionDuringSteal breaks only the
// follower→leader direction while a steal is due: heartbeats keep
// flowing (so the follower never promotes), but the follower's steal
// requests die in flight. The job completes on the leader anyway, and
// once the link heals the follower's next steal goes through.
func TestChaosNetAsymmetricPartitionDuringSteal(t *testing.T) {
	ctx := context.Background()
	nf := faults.NewNetFaults(stats.NewRNG(13))
	nodes := netFleet(t, []string{"node-a", "node-b"}, nf, func(id string, scfg *serve.Config, ccfg *Config) {
		scfg.Workers = 1
		ccfg.StealMax = 1
	})
	a, b := nodes["node-a"], nodes["node-b"]

	info := uploadCompas(t, a.client, 400, 3)
	spreadDataset(t, ctx, nodes, info.ID)
	syncFleet(t, ctx, a, b)

	// Wedge the leader's single worker on the first job so the second
	// sits queued and stealable.
	var wedged atomic.Bool
	wedged.Store(true)
	stalled := make(chan struct{})
	release := make(chan struct{})
	var releaseOnce sync.Once
	faults.Set(faults.ServeJob, func(any) error {
		if wedged.CompareAndSwap(true, false) {
			close(stalled)
			<-release
		}
		return nil
	})
	t.Cleanup(func() {
		faults.Clear(faults.ServeJob)
		releaseOnce.Do(func() { close(release) })
	})

	first, err := a.client.SubmitJob(ctx, serve.JobRequest{
		Kind: "identify", DatasetID: info.ID, TauC: 0.1, MinSize: 20, IdempotencyKey: "wedge",
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-stalled:
	case <-time.After(10 * time.Second):
		t.Fatal("leader worker never picked the wedge job up")
	}
	queued, err := a.client.SubmitJob(ctx, serve.JobRequest{
		Kind: "identify", DatasetID: info.ID, TauC: 0.2, MinSize: 20, IdempotencyKey: "stealable",
	})
	if err != nil {
		t.Fatal(err)
	}

	// The asymmetric break: node-b cannot reach node-a, but node-a's
	// heartbeats still reach node-b.
	nf.PartitionOneWay("node-b", "node-a")
	a.node.Tick(ctx) // heartbeat resets b's lease clock
	b.node.Tick(ctx) // b tries to steal; the request dies in flight
	if got := b.srv.Metrics().Snapshot().Counters["cluster.steals"]; got != 0 {
		t.Fatalf("steals through a dead b→a link = %d, want 0", got)
	}
	if dropped := nf.CountsFor("node-b", "node-a").Dropped; dropped == 0 {
		t.Fatal("b→a steal traffic was not dropped")
	}
	if role, _, _ := b.node.Role(); role != RoleFollower {
		t.Fatalf("node-b = %s during one-way break, want follower (heartbeats still arrive)", role)
	}

	// Heal the direction. The next tick's steal goes through, the
	// stolen job runs on node-b, and the result lands back on the
	// leader.
	nf.Heal("node-b", "node-a")
	deadline := time.Now().Add(10 * time.Second)
	for {
		a.node.Tick(ctx)
		b.node.Tick(ctx)
		if b.srv.Metrics().Snapshot().Counters["cluster.steals"] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("node-b never stole the queued job after heal")
		}
	}
	got, err := a.client.Wait(ctx, queued.ID, 5*time.Millisecond)
	if err != nil || got.State != serve.StateDone {
		t.Fatalf("stolen job after heal: %+v, %v", got, err)
	}

	// Unwedge and drain the first job too.
	releaseOnce.Do(func() { close(release) })
	if got, err = a.client.Wait(ctx, first.ID, 5*time.Millisecond); err != nil || got.State != serve.StateDone {
		t.Fatalf("wedged job: %+v, %v", got, err)
	}
}

// TestChaosCompactionRacesReplication compacts the leader's journal
// past a live follower's replication position: the frames the
// follower still needs stop existing mid-stream. The leader must
// switch that follower to the install-snapshot path and converge it
// to the tip, with the follower applying strictly fewer records than
// the log holds.
func TestChaosCompactionRacesReplication(t *testing.T) {
	ctx := context.Background()
	nodes := fleet(t, []string{"node-a", "node-b"}, nil)
	a, b := nodes["node-a"], nodes["node-b"]

	info := uploadCompas(t, a.client, 400, 3)
	syncFleet(t, ctx, a, b)
	applied0 := b.srv.Metrics().Snapshot().Counters["cluster.records_applied"]

	// Grow the log without ticking: node-b's position falls behind.
	for i := 0; i < 3; i++ {
		st, err := a.client.SubmitJob(ctx, serve.JobRequest{
			Kind: "identify", DatasetID: info.ID, TauC: 0.1 * float64(i+1), MinSize: 20,
			IdempotencyKey: fmt.Sprintf("race-%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if st, err = a.client.Wait(ctx, st.ID, 5*time.Millisecond); err != nil || st.State != serve.StateDone {
			t.Fatalf("job %d: %+v, %v", i, st, err)
		}
	}

	// The race, made deterministic: compaction wins before the next
	// replication tick reads the journal.
	upTo := a.store.Journal().Sequence()
	if err := a.store.Compact(ctx, upTo, true); err != nil {
		t.Fatal(err)
	}
	if base := a.store.Journal().Base(); base != upTo {
		t.Fatalf("leader base = %d after compaction, want %d", base, upTo)
	}

	// The follower's acked position is now below the base; ticking the
	// leader must install the snapshot, not fail the backfill read.
	deadline := time.Now().Add(10 * time.Second)
	for b.store.Journal().Sequence() != a.store.Journal().Sequence() {
		a.node.Tick(ctx)
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at %d, leader at %d", b.store.Journal().Sequence(), a.store.Journal().Sequence())
		}
	}
	if got := b.srv.Metrics().Snapshot().Counters["cluster.snapshot_installs"]; got < 1 {
		t.Fatalf("snapshot installs on node-b = %d, want >= 1", got)
	}
	if got := b.store.Journal().Base(); got != upTo {
		t.Fatalf("follower base = %d after install, want %d", got, upTo)
	}

	// Catching up via the snapshot applied strictly fewer records than
	// the log holds — that is the point of installing it.
	applied := b.srv.Metrics().Snapshot().Counters["cluster.records_applied"] - applied0
	if total := a.store.Journal().Sequence(); uint64(applied) >= total {
		t.Fatalf("follower applied %v records of a %d-record log; snapshot install saved nothing", applied, total)
	}

	// Both journal files are now the compacted form with the same base
	// and the same (empty-or-tail) frames: byte-identical.
	want, err := os.ReadFile(a.store.Journal().Path())
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(b.store.Journal().Path())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("journals differ after install (%d vs %d bytes)", len(got), len(want))
	}

	// Replication keeps flowing after the install: new work lands on
	// the follower as ordinary frames.
	st, err := a.client.SubmitJob(ctx, serve.JobRequest{
		Kind: "identify", DatasetID: info.ID, TauC: 0.5, MinSize: 20, IdempotencyKey: "post-install",
	})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = a.client.Wait(ctx, st.ID, 5*time.Millisecond); err != nil || st.State != serve.StateDone {
		t.Fatalf("post-install job: %+v, %v", st, err)
	}
	syncFleet(t, ctx, a, b)
	if bseq, aseq := b.store.Journal().Sequence(), a.store.Journal().Sequence(); bseq != aseq {
		t.Fatalf("post-install replication stalled: follower %d, leader %d", bseq, aseq)
	}
}

// TestDeposedReadyzReportsRejoiningAndProbeGuardsTerm pins the
// deposed surface: readiness names the rejoining state and the target
// term, the journal fence refuses originated appends, and the rejoin
// probe refuses any leader of a lower term — then accepts the real
// one.
func TestDeposedReadyzReportsRejoiningAndProbeGuardsTerm(t *testing.T) {
	ctx := context.Background()
	nodes := fleet(t, []string{"node-a", "node-b", "node-c"}, nil)
	a, c := nodes["node-a"], nodes["node-c"]
	syncFleet(t, ctx, a, nodes["node-b"], c)

	// Depose node-c at a term far above the fleet's: no live leader
	// can satisfy the probe, so the node must stay deposed.
	c.node.depose(99, "", "injected: term fence test")
	if ready, reason := c.srv.Readiness(); ready ||
		!strings.Contains(reason, "rejoining") || !strings.Contains(reason, "term 99") {
		t.Fatalf("deposed readiness = %v %q, want not-ready rejoining at term 99", ready, reason)
	}
	if err := c.store.Journal().Append(ctx, durable.Record{Type: durable.RecState, JobID: "x", State: "failed"}); !errors.Is(err, durable.ErrJournalFenced) {
		t.Fatalf("originated append on a deposed node = %v, want ErrJournalFenced", err)
	}
	c.node.Tick(ctx)
	if role, _, _ := c.node.Role(); role != RoleDeposed {
		t.Fatalf("node-c rejoined a term-1 fleet while deposed at term 99 (role %s)", role)
	}

	// A second fleet member deposed at the fleet's actual term rejoins
	// on its first probe tick.
	b := nodes["node-b"]
	b.node.depose(1, "node-a", "injected: rejoin test")
	b.node.Tick(ctx)
	if role, term, leader := b.node.Role(); role != RoleFollower || term != 1 || leader != "node-a" {
		t.Fatalf("node-b after probe = %s term %d leader %s, want follower/1/node-a", role, term, leader)
	}
	if err := b.store.Journal().Append(ctx, durable.Record{Type: durable.RecState, JobID: "x", State: "failed"}); !errors.Is(err, durable.ErrJournalFenced) {
		t.Fatalf("rejoined follower's originated append = %v, want ErrJournalFenced (fence holds until promotion)", err)
	}
}

// TestChaosNetDeposedNodeRejoinsThroughFlakyLinkViaSnapshot is the
// headline rejoin test. The fleet's original leader is partitioned
// away mid-leadership with an unreplicated tail; the fleet elects a
// successor, runs new work, and compacts its journal past the old
// leader's position. The partition then heals to a lossy link (drops
// and duplicates), through which the old leader must — without any
// restart — be deposed, demote its live engine, rejoin as a follower,
// have its forked tail truncated, catch up via snapshot install
// (applying strictly fewer records than the log holds), and end with
// a journal byte-identical to the new leader's. The fleet's answer
// stays byte-identical to an uninterrupted single-node run.
func TestChaosNetDeposedNodeRejoinsThroughFlakyLinkViaSnapshot(t *testing.T) {
	ctx := context.Background()
	baseGoroutines := runtime.NumGoroutine()
	t.Cleanup(func() { assertNoGoroutineLeak(t, baseGoroutines) })

	headline := serve.JobRequest{Kind: "identify", TauC: 0.1, MinSize: 20, IdempotencyKey: "flaky-headline"}

	// Baseline: the headline job on one uninterrupted durable node.
	var baseRaw json.RawMessage
	var baseID string
	{
		store, err := durable.Open(ctx, t.TempDir(), false)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := serve.NewDurable(ctx, serve.Config{Workers: 1, QueueDepth: 8}, store)
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(func() {
			sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				t.Errorf("baseline shutdown: %v", err)
			}
			hs.Close()
			if err := store.Close(); err != nil {
				t.Error(err)
			}
		})
		cl := serve.NewClient(hs.URL)
		info := uploadCompas(t, cl, 800, 5)
		baseID = info.ID
		headline.DatasetID = info.ID
		st, err := cl.SubmitJob(ctx, headline)
		if err != nil {
			t.Fatal(err)
		}
		if st, err = cl.Wait(ctx, st.ID, 5*time.Millisecond); err != nil || st.State != serve.StateDone {
			t.Fatalf("baseline job: %+v, %v", st, err)
		}
		if err := cl.Result(ctx, st.ID, &baseRaw); err != nil {
			t.Fatal(err)
		}
	}

	nf := faults.NewNetFaults(stats.NewRNG(17))
	nodes := netFleet(t, []string{"node-a", "node-b", "node-c"}, nf, nil)
	a, b, c := nodes["node-a"], nodes["node-b"], nodes["node-c"]

	info := uploadCompas(t, a.client, 800, 5)
	if info.ID != baseID {
		t.Fatalf("content-addressed IDs diverged: fleet %s, baseline %s", info.ID, baseID)
	}
	spreadDataset(t, ctx, nodes, info.ID)
	syncFleet(t, ctx, a, b, c)

	// node-a (leader, term 1) is cut off from both peers, then keeps
	// serving into the void: the job below lands only on its own
	// journal — the classic unreplicated tail.
	nf.Partition("node-a", "node-b")
	nf.Partition("node-a", "node-c")
	orphan, err := a.client.SubmitJob(ctx, serve.JobRequest{
		Kind: "identify", DatasetID: info.ID, TauC: 0.3, MinSize: 30, IdempotencyKey: "orphaned-on-a",
	})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := a.client.Wait(ctx, orphan.ID, 5*time.Millisecond); err != nil || st.State != serve.StateDone {
		t.Fatalf("orphaned job on old leader: %+v, %v", st, err)
	}
	a.node.Tick(ctx) // its replication attempts all drop
	if nf.CountsFor("node-a", "node-b").Dropped == 0 {
		t.Fatal("old leader's sends were not dropped")
	}
	forkSeq := a.store.Journal().Sequence()

	// node-b promotes after node-a's silence (rank 0: one lease = 2
	// ticks; the third tick moves).
	for i := 0; i < 3; i++ {
		b.node.Tick(ctx)
	}
	if role, term, _ := b.node.Role(); role != RoleLeader || term != 2 {
		t.Fatalf("node-b = %s term %d, want leader/2", role, term)
	}

	// The new leadership does real work — including the headline job —
	// then compacts its journal past node-a's position.
	b.store.SetCompaction(durable.CompactionPolicy{Every: 4, Truncate: true})
	st, err := b.client.SubmitJob(ctx, headline)
	if err != nil {
		t.Fatal(err)
	}
	if st, err = b.client.Wait(ctx, st.ID, 5*time.Millisecond); err != nil || st.State != serve.StateDone {
		t.Fatalf("headline job on new leader: %+v, %v", st, err)
	}
	b.node.Tick(ctx) // replicates to node-c, then compacts
	base := b.store.Journal().Base()
	if base == 0 {
		t.Fatal("new leader never compacted")
	}
	if base <= forkSeq-1 {
		// The horizon must strictly cover node-a's position for the
		// catch-up to require the snapshot path.
		t.Fatalf("compaction horizon %d does not pass the old leader's position %d", base, forkSeq)
	}
	// Freeze the horizon here: the next job's records must remain in
	// the log as the tail the rejoined node replays after the install.
	b.store.SetCompaction(durable.CompactionPolicy{})

	// One more job after the horizon, so catching up needs snapshot
	// AND tail — and so records_applied has a tail to count.
	st2, err := b.client.SubmitJob(ctx, serve.JobRequest{
		Kind: "identify", DatasetID: info.ID, TauC: 0.2, MinSize: 25, IdempotencyKey: "post-compaction",
	})
	if err != nil {
		t.Fatal(err)
	}
	if st2, err = b.client.Wait(ctx, st2.ID, 5*time.Millisecond); err != nil || st2.State != serve.StateDone {
		t.Fatalf("post-compaction job: %+v, %v", st2, err)
	}

	// Heal to a flaky link: drops and duplicates both ways between the
	// old leader and the fleet. Everything that follows — deposition,
	// engine demotion, fork truncation, snapshot install, tail catch-up
	// — must happen through this wire.
	nf.SetRule("node-a", "node-b", faults.Rule{Drop: 0.3, Dup: 0.2})
	nf.SetRule("node-b", "node-a", faults.Rule{Drop: 0.3, Dup: 0.2})
	nf.Heal("node-a", "node-c")

	deadline := time.Now().Add(15 * time.Second)
	for a.store.Journal().Sequence() != b.store.Journal().Sequence() ||
		func() bool { r, _, _ := a.node.Role(); return r != RoleFollower }() {
		b.node.Tick(ctx)
		if role, _, _ := a.node.Role(); role == RoleDeposed {
			// The deposed node's own probe also fights through the
			// flaky link; whichever side wins, the rejoin is live.
			a.node.Tick(ctx)
		}
		if time.Now().After(deadline) {
			role, term, leader := a.node.Role()
			t.Fatalf("old leader never converged: role %s term %d leader %s, seq %d vs %d",
				role, term, leader, a.store.Journal().Sequence(), b.store.Journal().Sequence())
		}
	}

	// The node rejoined live: follower of node-b at term 2, engine
	// demoted (the orphaned job is gone — its records sat on the
	// truncated fork), journal reset to the leader's horizon.
	if role, term, leader := a.node.Role(); role != RoleFollower || term != 2 || leader != "node-b" {
		t.Fatalf("node-a = %s term %d leader %s, want follower/2/node-b", role, term, leader)
	}
	if got := a.srv.Metrics().Snapshot().Counters["cluster.rejoins"]; got < 1 {
		t.Fatalf("rejoins on node-a = %v, want >= 1", got)
	}
	if got := a.srv.Metrics().Snapshot().Counters["cluster.snapshot_installs"]; got < 1 {
		t.Fatalf("snapshot installs on node-a = %v, want >= 1", got)
	}
	if got := a.store.Journal().Base(); got != base {
		t.Fatalf("node-a base = %d after install, want the leader's horizon %d", got, base)
	}

	// Catch-up cost: node-a applied only the post-horizon tail, never
	// the full log. (Its pre-partition life was as the originating
	// leader, so every applied record it has came through the rejoin.)
	applied := a.srv.Metrics().Snapshot().Counters["cluster.records_applied"]
	if total := b.store.Journal().Sequence(); uint64(applied) >= total {
		t.Fatalf("rejoined node applied %v of %d records; snapshot install saved nothing", applied, total)
	}

	// Byte-identity, twice over. The journals: node-a's install+tail
	// file equals the leader's compacted file exactly. The answer: the
	// headline IBS equals the uninterrupted single-node run, fetched
	// both from the leader and through the rejoined follower's
	// forwarding.
	want, err := os.ReadFile(b.store.Journal().Path())
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(a.store.Journal().Path())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("rejoined journal differs from leader's (%d vs %d bytes)", len(got), len(want))
	}
	var fleetRaw json.RawMessage
	if err := b.client.Result(ctx, st.ID, &fleetRaw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(baseRaw, fleetRaw) {
		t.Fatalf("fleet IBS differs from single-node run:\n fleet:    %s\n baseline: %s", fleetRaw, baseRaw)
	}
	nf.HealAll()
	var fwdRaw json.RawMessage
	if err := a.client.Result(ctx, st.ID, &fwdRaw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(baseRaw, fwdRaw) {
		t.Fatal("result through the rejoined follower differs from the baseline")
	}

	// The orphaned job died with the truncated fork: resubmitting its
	// exact request finds nothing to dedup onto — the fleet has no
	// memory of work that was never replicated — and starts fresh.
	resub, err := b.client.SubmitJob(ctx, serve.JobRequest{
		Kind: "identify", DatasetID: info.ID, TauC: 0.3, MinSize: 30, IdempotencyKey: "orphaned-on-a",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resub.State == serve.StateDone {
		t.Fatal("resubmitted fork job deduped onto a completed run; the orphaned fork survived the rejoin")
	}
	if st, err := b.client.Wait(ctx, resub.ID, 5*time.Millisecond); err != nil || st.State != serve.StateDone {
		t.Fatalf("resubmitted fork job: %+v, %v", st, err)
	}
}
