package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/serve"
)

// TestObsFleetStitchedTraceAndFederation is the fleet-observability
// acceptance test (make obs-fleet-check runs it under -race): a
// three-node fleet steals a job, and afterwards (1) the leader's
// per-job trace is one stitched timeline carrying spans from at least
// two distinct node IDs under a deterministic trace ID, and (2)
// /metrics/fleet — asked via a follower, so the forwarding path is
// exercised too — reports merged counters exactly equal to the sum of
// the per-node registries it shipped alongside them.
func TestObsFleetStitchedTraceAndFederation(t *testing.T) {
	ctx := context.Background()
	nodes := fleet(t, []string{"node-a", "node-b", "node-c"}, func(id string, scfg *serve.Config, ccfg *Config) {
		scfg.Workers = 1
		ccfg.StealMax = 1
	})
	a, b, c := nodes["node-a"], nodes["node-b"], nodes["node-c"]
	info := uploadCompas(t, a.client, 200, 7)
	syncFleet(t, ctx, a, b, c)

	// Pin node-a's only worker inside the first job so the second stays
	// queued and stealable (the fault gates only the leader's local
	// runner, not a stolen run's RunRequest path).
	entered := make(chan struct{}, 4)
	gate := make(chan struct{})
	faults.Set(faults.ServeJob, func(any) error {
		entered <- struct{}{}
		<-gate
		return nil
	})
	t.Cleanup(func() { faults.Clear(faults.ServeJob) })
	defer close(gate)

	if _, err := a.client.SubmitJob(ctx, serve.JobRequest{Kind: "train", DatasetID: info.ID, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	<-entered
	st2, err := a.client.SubmitJob(ctx, serve.JobRequest{Kind: "train", DatasetID: info.ID, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Tick leader and one follower until the stolen job completes; the
	// heartbeats keep node-b's promotion clock at zero.
	deadline := time.Now().Add(10 * time.Second)
	for {
		a.node.Tick(ctx)
		b.node.Tick(ctx)
		st, err := a.client.Job(ctx, st2.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == serve.StateDone {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("stolen job ended %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("stolen job still %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The stitched trace: deterministic identity (leader node + job ID,
	// no entropy), local submission/handoff spans from node-a, and the
	// stealer's grafted subtree attributed to node-b and marked Remote.
	doc, err := a.client.Trace(ctx, st2.ID)
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	if want := "node-a/" + st2.ID; doc.TraceID != want {
		t.Fatalf("trace ID = %q, want deterministic %q", doc.TraceID, want)
	}
	byNode := map[string]int{}
	var remote, stolenSpan bool
	for _, sp := range doc.Spans {
		byNode[sp.Node]++
		if sp.Remote {
			remote = true
		}
		if sp.Name == "cluster.run_stolen" && sp.Node == "node-b" {
			stolenSpan = true
		}
	}
	if len(byNode) < 2 || byNode["node-a"] == 0 || byNode["node-b"] == 0 {
		t.Fatalf("stitched trace spans by node = %v, want both node-a and node-b", byNode)
	}
	if !remote || !stolenSpan {
		t.Fatalf("trace missing grafted remote run_stolen span (remote=%v stolen=%v): %+v",
			remote, stolenSpan, doc.Spans)
	}

	// Federation through a follower: the request forwards to the
	// leader, which pulls every /cluster/obs and merges. The merged
	// counters must equal the sum of the per-node registries shipped in
	// the same response — exactly, since both come from one snapshot
	// round.
	fo, err := b.client.FleetObs(ctx)
	if err != nil {
		t.Fatalf("fleet obs via follower: %v", err)
	}
	if fo.Leader != "node-a" || len(fo.Nodes) != 3 {
		t.Fatalf("fleet view = leader %s, %d nodes; want node-a, 3", fo.Leader, len(fo.Nodes))
	}
	sums := map[string]int64{}
	for _, n := range fo.Nodes {
		if n.Err != "" {
			t.Fatalf("node %s unreachable in fleet view: %s", n.NodeID, n.Err)
		}
		for name, v := range n.Metrics.Counters {
			sums[name] += v
		}
	}
	if len(fo.Merged.Counters) != len(sums) {
		t.Fatalf("merged has %d counters, per-node sums have %d", len(fo.Merged.Counters), len(sums))
	}
	for name, want := range sums {
		if got := fo.Merged.Counters[name]; got != want {
			t.Fatalf("merged counter %s = %d, want per-node sum %d", name, got, want)
		}
	}
	if fo.Merged.Counters["serve.jobs_stolen"] != 1 || fo.Merged.Counters["cluster.steals"] != 1 {
		t.Fatalf("steal not visible in merged counters: %v", fo.Merged.Counters)
	}
	// Per-route latency histograms survive the merge under their route
	// labels — the series remedyctl status renders.
	if _, ok := fo.Merged.Histograms[`serve.http_duration_ms{route="POST /jobs"}`]; !ok {
		routes := make([]string, 0, len(fo.Merged.Histograms))
		for name := range fo.Merged.Histograms {
			routes = append(routes, name)
		}
		t.Fatalf("merged histograms missing POST /jobs route series: %v", routes)
	}

	close(entered)
}

// TestObsFleetEventsAndLag covers the cluster-health surfaces: the
// leader's /readyz reports per-follower replication lag, and
// /cluster/events records the steal life-cycle in a bounded ring.
func TestObsFleetEventsAndLag(t *testing.T) {
	ctx := context.Background()
	nodes := fleet(t, []string{"node-a", "node-b"}, func(id string, scfg *serve.Config, ccfg *Config) {
		scfg.Workers = 1
		ccfg.StealMax = 1
	})
	a, b := nodes["node-a"], nodes["node-b"]
	info := uploadCompas(t, a.client, 200, 7)
	syncFleet(t, ctx, a, b)

	resp, err := http.Get(a.http.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var h serve.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	lag, ok := h.Lag["node-b"]
	if !ok || lag != 0 {
		t.Fatalf("leader /readyz lag = %v, want node-b at 0 after sync", h.Lag)
	}
	if g := a.srv.Metrics().Snapshot().Gauges[`cluster.replication_lag{peer="node-b"}`]; g != 0 {
		t.Fatalf("per-peer lag gauge = %v, want 0 after sync", g)
	}

	// Force a steal so the event log has a life-cycle to show.
	entered := make(chan struct{}, 4)
	gate := make(chan struct{})
	faults.Set(faults.ServeJob, func(any) error {
		entered <- struct{}{}
		<-gate
		return nil
	})
	t.Cleanup(func() { faults.Clear(faults.ServeJob) })
	defer close(gate)
	if _, err := a.client.SubmitJob(ctx, serve.JobRequest{Kind: "train", DatasetID: info.ID, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	<-entered
	st2, err := a.client.SubmitJob(ctx, serve.JobRequest{Kind: "train", DatasetID: info.ID, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		a.node.Tick(ctx)
		b.node.Tick(ctx)
		if st, err := a.client.Job(ctx, st2.ID); err != nil {
			t.Fatal(err)
		} else if st.State == serve.StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stolen job did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err = http.Get(a.http.URL + "/cluster/events")
	if err != nil {
		t.Fatal(err)
	}
	var ev struct {
		NodeID string           `json:"node_id"`
		Events []obs.EventEntry `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	kinds := map[string]int{}
	var lastSeq uint64
	for _, e := range ev.Events {
		kinds[e.Kind]++
		if e.Seq <= lastSeq {
			t.Fatalf("event seq not increasing: %+v", ev.Events)
		}
		lastSeq = e.Seq
	}
	if kinds["steal"] == 0 || kinds["steal-result"] == 0 {
		t.Fatalf("event log missing steal life-cycle: %v", kinds)
	}

	close(entered)
}
