package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"

	"repro/internal/durable"
	"repro/internal/faults"
	"repro/internal/obs"
)

// The replication wire protocol. One request carries a contiguous run
// of journal records starting at FromSeq — empty for a pure heartbeat
// — plus the sender's term, total log length, and full term history
// (TermStarts). The history is the fork fence: a follower whose own
// term history disagrees with the leader's knows its log diverged at
// the first disagreeing entry's position and truncates back to it
// before accepting more records. The response is the receiver's term
// and how much log it now holds; Rejected means the sender's term is
// stale (or lost a same-term tie) and it must step down.
type replicateRequest struct {
	Term       uint64           `json:"term"`
	Leader     string           `json:"leader"`
	LeaderSeq  uint64           `json:"leader_seq"`
	FromSeq    uint64           `json:"from_seq"`
	TermStarts []termStart      `json:"term_starts,omitempty"`
	Records    []durable.Record `json:"records,omitempty"`
}

type replicateResponse struct {
	Term     uint64 `json:"term"`
	Leader   string `json:"leader,omitempty"`
	HaveSeq  uint64 `json:"have_seq"`
	Rejected bool   `json:"rejected,omitempty"`
	// NeedSnapshot asks the leader to install its snapshot instead of
	// backfilling records: the receiver's fork point (or position) is
	// below a compaction horizon, so the frames record-by-record
	// reconciliation would need no longer exist.
	NeedSnapshot bool `json:"need_snapshot,omitempty"`
}

// snapshotRequest ships a leader's whole snapshot file to a follower
// that positional backfill cannot catch up — its position or fork
// point is behind the leader's compaction horizon. Raw is the
// snapshot file verbatim; ID is its content address, which the
// follower re-derives from the bytes before committing anything.
type snapshotRequest struct {
	Term   uint64 `json:"term"`
	Leader string `json:"leader"`
	ID     string `json:"id"`
	Raw    []byte `json:"raw"`
}

// replicateAll streams the journal to every follower, one send per
// peer per tick. A peer whose position is unknown (fresh leadership)
// gets a pure heartbeat and reports its HaveSeq back; from then on it
// receives the records it is missing, BatchMax at a time, read
// straight from the journal file. The same send is the lease renewal:
// hearing it is what stops a follower's promotion clock.
func (n *Node) replicateAll(ctx context.Context) {
	n.mu.Lock()
	term := n.term
	starts := append([]termStart(nil), n.termStarts...)
	type target struct {
		p     *peerState
		known bool
		acked uint64
	}
	targets := make([]target, 0, len(n.peers))
	for _, id := range sortedKeys(n.peers) {
		p := n.peers[id]
		targets = append(targets, target{p, p.known, p.acked})
	}
	n.mu.Unlock()

	seq := n.journal.Sequence()
	minAcked := seq
	for _, t := range targets {
		if t.known && t.acked < n.journal.Base() {
			// The records this peer needs were compacted away: no journal
			// frame below the base exists to backfill from. Install the
			// snapshot instead; positional replication resumes from its
			// horizon on the next tick.
			n.sendSnapshot(ctx, term, t.p)
			continue
		}
		req := replicateRequest{Term: term, Leader: n.cfg.ID, LeaderSeq: seq, FromSeq: seq, TermStarts: starts}
		if t.known && t.acked < seq {
			recs, err := durable.ReadJournalRange(ctx, n.journal.Path(), t.acked, uint64(n.cfg.BatchMax))
			if errors.Is(err, durable.ErrCompacted) {
				// A compaction raced this tick past the peer's position.
				n.sendSnapshot(ctx, term, t.p)
				continue
			}
			if err != nil {
				n.logger.Error("replication backfill read failed", "peer", t.p.id, "err", err)
				continue
			}
			req.FromSeq = t.acked
			req.Records = recs
		}
		if err := faults.FireCtx(ctx, faults.ClusterReplicate, n.cfg.ID+"→"+t.p.id); err != nil {
			// The injected partition: the frames never leave this node.
			n.logger.Warn("replication send suppressed", "peer", t.p.id, "err", err)
			continue
		}
		body, err := json.Marshal(req)
		if err != nil {
			n.logger.Error("replication request marshal failed", "err", err)
			return
		}
		// The replication stream is a traced hop like any other: a
		// deterministic per-send identity (leader/term/position — no
		// entropy, no clock) rides the headers via the shared client.
		sctx := obs.WithTraceContext(ctx, obs.TraceContext{
			TraceID: fmt.Sprintf("%s/repl-t%d-s%06d", n.cfg.ID, term, seq),
			Via:     n.cfg.ID,
		})
		var resp replicateResponse
		if err := t.p.client.DoJSON(sctx, http.MethodPost, "/cluster/replicate", body, &resp); err != nil {
			n.logger.Warn("replication send failed", "peer", t.p.id, "err", err)
			continue
		}
		if resp.Rejected {
			n.depose(resp.Term, resp.Leader, "replication rejected by higher term")
			return
		}
		if resp.NeedSnapshot {
			// The peer's fork point is below a compaction horizon; only
			// the snapshot file can reconcile it.
			n.sendSnapshot(ctx, term, t.p)
			continue
		}
		n.mu.Lock()
		t.p.known, t.p.acked = true, resp.HaveSeq
		n.mu.Unlock()
		// Per-follower lag (frames behind this leader's journal): the
		// number /readyz and the fleet view surface per node.
		n.metrics.Gauge(obs.WithLabel("cluster.replication_lag", "peer", t.p.id)).
			Set(float64(seq - resp.HaveSeq))
		if resp.HaveSeq < minAcked {
			minAcked = resp.HaveSeq
		}
	}
	n.metrics.Gauge("cluster.replication_lag").Set(float64(seq - minAcked))
}

// sendSnapshot ships the snapshot file to one follower that positional
// backfill cannot reach: the frames it needs were compacted away. The
// follower verifies the content address, commits the file, resets its
// journal to the horizon, and acks HaveSeq = horizon — from where the
// ordinary record stream resumes next tick.
func (n *Node) sendSnapshot(ctx context.Context, term uint64, p *peerState) {
	raw, id, snap, err := n.srv.Store().SnapshotRaw(ctx)
	if err != nil {
		n.logger.Error("snapshot read for install failed", "peer", p.id, "err", err)
		return
	}
	if err := faults.FireCtx(ctx, faults.ClusterReplicate, n.cfg.ID+"→"+p.id); err != nil {
		n.logger.Warn("snapshot send suppressed", "peer", p.id, "err", err)
		return
	}
	body, err := json.Marshal(snapshotRequest{Term: term, Leader: n.cfg.ID, ID: id, Raw: raw})
	if err != nil {
		n.logger.Error("snapshot request marshal failed", "err", err)
		return
	}
	sctx := obs.WithTraceContext(ctx, obs.TraceContext{
		TraceID: fmt.Sprintf("%s/snap-t%d-b%06d", n.cfg.ID, term, snap.BaseSeq),
		Via:     n.cfg.ID,
	})
	var resp replicateResponse
	if err := p.client.DoJSON(sctx, http.MethodPost, "/cluster/snapshot", body, &resp); err != nil {
		n.logger.Warn("snapshot send failed", "peer", p.id, "err", err)
		return
	}
	if resp.Rejected {
		n.depose(resp.Term, resp.Leader, "snapshot install rejected by higher term")
		return
	}
	n.mu.Lock()
	p.known, p.acked = true, resp.HaveSeq
	n.mu.Unlock()
	n.events.Append("snapshot", fmt.Sprintf("snapshot %s (horizon %d) installed on %s", id, snap.BaseSeq, p.id))
	n.logger.Info("snapshot installed on follower", "peer", p.id, "base", snap.BaseSeq, "have", resp.HaveSeq)
}

// applySnapshot is the follower half of snapshot installation. Term
// fencing mirrors applyReplicate exactly — a snapshot is just a very
// large replication frame — and the whole function runs under applyMu
// so no record stream interleaves with the file swap. A deposed node
// contacted by a current-term leader rejoins inline first.
func (n *Node) applySnapshot(ctx context.Context, req snapshotRequest) (replicateResponse, int, string) {
	n.applyMu.Lock()
	defer n.applyMu.Unlock()

	n.mu.Lock()
	if n.role == RoleDeposed && req.Term >= n.term {
		n.mu.Unlock()
		n.rejoinLocked(ctx, req.Term, req.Leader)
		n.mu.Lock()
	}
	if n.role == RoleDeposed {
		n.mu.Unlock()
		return replicateResponse{}, http.StatusServiceUnavailable,
			"cluster: node is deposed; rejoining the fleet"
	}
	if req.Term < n.term {
		resp := replicateResponse{Term: n.term, Leader: n.leader, Rejected: true}
		n.mu.Unlock()
		n.metrics.Counter("cluster.replicate_rejected").Inc()
		n.logger.Warn("rejected stale-term snapshot install",
			"from", req.Leader, "their_term", req.Term, "our_term", resp.Term)
		return resp, http.StatusOK, ""
	}
	if req.Term == n.term && n.role == RoleLeader {
		if req.Leader < n.cfg.ID {
			n.mu.Unlock()
			n.depose(req.Term, req.Leader, "same-term leader tie; lower node ID wins")
			return replicateResponse{}, http.StatusServiceUnavailable,
				"cluster: node is deposed; rejoining the fleet"
		}
		resp := replicateResponse{Term: n.term, Leader: n.cfg.ID, Rejected: true}
		n.mu.Unlock()
		n.metrics.Counter("cluster.replicate_rejected").Inc()
		return resp, http.StatusOK, ""
	}
	if req.Term > n.term && n.role == RoleLeader {
		n.mu.Unlock()
		n.depose(req.Term, req.Leader, "superseded while leading")
		return replicateResponse{}, http.StatusServiceUnavailable,
			"cluster: node is deposed; rejoining the fleet"
	}
	if req.Term > n.term {
		n.term = req.Term
		n.metrics.Gauge("cluster.leader_term").Set(float64(req.Term))
		n.events.Append("term", fmt.Sprintf("adopted term %d led by %s", req.Term, req.Leader))
	}
	n.leader = req.Leader
	n.missed = 0
	term := n.term
	n.mu.Unlock()

	// The store verifies the content address against the raw bytes,
	// commits the file atomically, and resets the journal to the
	// snapshot's horizon — everything the local log held is superseded.
	//lint:allow heldcall applyMu serializes the snapshot install against the record stream; the fsync is the installed snapshot's durability point
	snap, err := n.srv.Store().InstallSnapshot(ctx, req.Raw, req.ID)
	if err != nil {
		n.logger.Error("snapshot install failed", "from", req.Leader, "err", err)
		return replicateResponse{}, http.StatusInternalServerError,
			"cluster: install snapshot: " + err.Error()
	}
	n.mu.Lock()
	n.termStarts = append([]termStart(nil), snap.TermStarts...)
	n.mu.Unlock()
	n.metrics.Counter("cluster.snapshot_installs").Inc()
	n.events.Append("snapshot", fmt.Sprintf("installed snapshot at horizon %d from %s", snap.BaseSeq, req.Leader))
	n.logger.Info("snapshot installed", "from", req.Leader, "base", snap.BaseSeq, "jobs", len(snap.Jobs))
	return replicateResponse{Term: term, HaveSeq: n.journal.Sequence()}, http.StatusOK, ""
}

// applyReplicate is the follower half: terms are checked, the lease
// clock resets, the term histories are reconciled (truncating a forked
// local suffix), and the records land positionally via
// AppendReplicated. The whole function runs under applyMu — two
// concurrent requests for the same records (a timed-out send still
// executing while the retrying client's second attempt arrives) must
// not both observe the same log length and double-append. It returns
// the response plus an HTTP status (a non-200 status means the body is
// an error message, not a response).
func (n *Node) applyReplicate(ctx context.Context, req replicateRequest) (replicateResponse, int, string) {
	n.applyMu.Lock()
	defer n.applyMu.Unlock()

	n.mu.Lock()
	if n.role == RoleDeposed && req.Term >= n.term {
		// The fleet's current leader reached this deposed node before
		// its own rejoin probe did: rejoin inline — demote the engine,
		// become a follower — and process this very request as one.
		n.mu.Unlock()
		n.rejoinLocked(ctx, req.Term, req.Leader)
		n.mu.Lock()
	}
	if n.role == RoleDeposed {
		n.mu.Unlock()
		return replicateResponse{}, http.StatusServiceUnavailable,
			"cluster: node is deposed; rejoining the fleet"
	}
	if req.Term < n.term {
		resp := replicateResponse{Term: n.term, Leader: n.leader, Rejected: true}
		n.mu.Unlock()
		n.metrics.Counter("cluster.replicate_rejected").Inc()
		n.logger.Warn("rejected stale-term replication",
			"from", req.Leader, "their_term", req.Term, "our_term", resp.Term)
		return resp, http.StatusOK, ""
	}
	if req.Term == n.term && n.role == RoleLeader {
		// Two nodes claim the same term: both sides of a partition
		// promoted to it. Tie-break like the bootstrap election — lowest
		// node ID wins — so exactly one survives contact: the higher ID
		// deposes itself, the lower rejects so its caller steps down.
		if req.Leader < n.cfg.ID {
			n.mu.Unlock()
			n.depose(req.Term, req.Leader, "same-term leader tie; lower node ID wins")
			return replicateResponse{}, http.StatusServiceUnavailable,
				"cluster: node is deposed; rejoining the fleet"
		}
		resp := replicateResponse{Term: n.term, Leader: n.cfg.ID, Rejected: true}
		n.mu.Unlock()
		n.metrics.Counter("cluster.replicate_rejected").Inc()
		n.logger.Warn("rejected same-term replication; this node holds the tie-break",
			"from", req.Leader, "term", req.Term)
		return resp, http.StatusOK, ""
	}
	if req.Term > n.term && n.role == RoleLeader {
		// Another node leads a later term: this node's journal holds its
		// own RecTerm (and possibly more) that the new leader's log does
		// not — a fork, and this node's engine is live on it. Step aside
		// with the journal fenced; the rejoin path (next tick, or the
		// leader's next contact) demotes the engine and re-enters as a
		// follower, whose reconciliation then heals the forked journal.
		n.mu.Unlock()
		n.depose(req.Term, req.Leader, "superseded while leading")
		return replicateResponse{}, http.StatusServiceUnavailable,
			"cluster: node is deposed; rejoining the fleet"
	}
	if req.Term > n.term {
		n.term = req.Term
		n.metrics.Gauge("cluster.leader_term").Set(float64(req.Term))
		n.events.Append("term", fmt.Sprintf("adopted term %d led by %s", req.Term, req.Leader))
	}
	adopted := n.leader != req.Leader
	n.leader = req.Leader
	n.missed = 0
	term := n.term
	mine := append([]termStart(nil), n.termStarts...)
	n.mu.Unlock()
	if adopted {
		// Keep /readyz honest: a standby follower is still not-ready
		// (writes forward to the leader), but "no current term" stops
		// being true the moment a heartbeat names one.
		n.srv.SetNotReady(fmt.Sprintf("follower of %s at term %d; writes forward to the leader", req.Leader, term))
	}

	local := n.journal.Sequence()
	if cut, forked := forkPoint(req.TermStarts, mine); forked && cut < local {
		// The logs demonstrably diverge at cut: everything this node
		// holds from there is a dead leadership's unreplicated tail, not
		// the fleet's history. Cut it and let the stream re-fill — the
		// rejoin path for a crashed leader whose fork would otherwise
		// survive (it can be the same length as the fleet's log, so no
		// length check can see it).
		n.logger.Warn("local log forked from leader's; truncating",
			"fork_at", cut, "local_seq", local, "leader", req.Leader, "term", req.Term)
		if err := n.journal.TruncateTo(ctx, cut); err != nil {
			if errors.Is(err, durable.ErrCompacted) {
				// The fork point is below this node's own compaction
				// horizon: the frames record-level reconciliation would
				// rewind through no longer exist locally. Ask the leader
				// for its snapshot instead.
				n.logger.Warn("fork point below compaction horizon; requesting snapshot",
					"fork_at", cut, "base", n.journal.Base(), "leader", req.Leader)
				return replicateResponse{Term: term, HaveSeq: local, NeedSnapshot: true}, http.StatusOK, ""
			}
			n.logger.Error("fork truncation failed", "err", err)
			return replicateResponse{}, http.StatusInternalServerError,
				"cluster: fork truncation failed: " + err.Error()
		}
		n.mu.Lock()
		kept := n.termStarts[:0]
		for _, ts := range n.termStarts {
			if ts.Seq < cut {
				kept = append(kept, ts)
			}
		}
		n.termStarts = kept
		n.mu.Unlock()
		n.metrics.Counter("cluster.log_truncations").Inc()
		local = cut
	}
	if local > req.LeaderSeq {
		// Longer than the leader's whole log yet with an agreeing term
		// history: not a shape replication can produce. Step aside rather
		// than guess.
		n.depose(req.Term, req.Leader, "log diverged from leader")
		return replicateResponse{}, http.StatusServiceUnavailable,
			"cluster: node is deposed; rejoining the fleet"
	}
	applied := int64(0)
	for i, rec := range req.Records {
		pos := req.FromSeq + uint64(i)
		if pos < local {
			continue // overlap: already applied
		}
		if pos > local {
			break // gap: the leader will backfill from our HaveSeq
		}
		// Held across the fsync on purpose: applyMu is the fence that
		// keeps frame application, truncation, and promotion mutually
		// exclusive; a follower applying frames has nothing else to do.
		//lint:allow heldcall applyMu serializes frame application against truncation and promotion; the fsync is the applied frame's durability point
		if err := n.journal.AppendReplicated(ctx, rec); err != nil {
			n.logger.Error("replicated append failed", "seq", pos, "err", err)
			break
		}
		local++
		applied++
		if rec.Type == durable.RecTerm {
			// Track term history arriving through the log itself (a
			// replayed election from before this node joined).
			n.mu.Lock()
			n.termStarts = append(n.termStarts, termStart{Term: rec.Term, Leader: rec.Leader, Seq: pos})
			if rec.Term > n.term {
				n.term, n.leader = rec.Term, rec.Leader
				term = n.term
			}
			n.mu.Unlock()
		}
	}
	n.metrics.Counter("cluster.records_applied").Add(applied)
	return replicateResponse{Term: term, HaveSeq: n.journal.Sequence()}, http.StatusOK, ""
}

// forkPoint compares the leader's term history against the local one
// and returns the position where the logs demonstrably diverge: the
// first history entry the two sides disagree on. ok is false when the
// histories are identical — then the local log is a true prefix of the
// leader's, because every record after the last shared RecTerm was
// appended by that entry's leader and replicated positionally from it.
// When one history merely extends the other, the logs only fork from
// the first extra entry's position; a local log that ends at or before
// that position is just behind, which the caller's cut-versus-length
// check excludes.
func forkPoint(leader, local []termStart) (cut uint64, ok bool) {
	k := 0
	for k < len(leader) && k < len(local) && leader[k] == local[k] {
		k++
	}
	if k == len(leader) && k == len(local) {
		return 0, false
	}
	cut = math.MaxUint64
	if k < len(leader) {
		cut = leader[k].Seq
	}
	if k < len(local) && local[k].Seq < cut {
		cut = local[k].Seq
	}
	return cut, true
}
