package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/durable"
	"repro/internal/faults"
)

// The replication wire protocol. One request carries a contiguous run
// of journal records starting at FromSeq — empty for a pure heartbeat
// — plus the sender's term and total log length. The response is the
// receiver's term and how much log it now holds; Rejected means the
// sender's term is stale and it must step down.
type replicateRequest struct {
	Term      uint64           `json:"term"`
	Leader    string           `json:"leader"`
	LeaderSeq uint64           `json:"leader_seq"`
	FromSeq   uint64           `json:"from_seq"`
	Records   []durable.Record `json:"records,omitempty"`
}

type replicateResponse struct {
	Term     uint64 `json:"term"`
	Leader   string `json:"leader,omitempty"`
	HaveSeq  uint64 `json:"have_seq"`
	Rejected bool   `json:"rejected,omitempty"`
}

// replicateAll streams the journal to every follower, one send per
// peer per tick. A peer whose position is unknown (fresh leadership)
// gets a pure heartbeat and reports its HaveSeq back; from then on it
// receives the records it is missing, BatchMax at a time, read
// straight from the journal file. The same send is the lease renewal:
// hearing it is what stops a follower's promotion clock.
func (n *Node) replicateAll(ctx context.Context) {
	n.mu.Lock()
	term := n.term
	type target struct {
		p     *peerState
		known bool
		acked uint64
	}
	targets := make([]target, 0, len(n.peers))
	for _, id := range sortedKeys(n.peers) {
		p := n.peers[id]
		targets = append(targets, target{p, p.known, p.acked})
	}
	n.mu.Unlock()

	seq := n.journal.Sequence()
	minAcked := seq
	for _, t := range targets {
		req := replicateRequest{Term: term, Leader: n.cfg.ID, LeaderSeq: seq, FromSeq: seq}
		if t.known && t.acked < seq {
			recs, err := durable.ReadJournalRange(ctx, n.journal.Path(), t.acked, uint64(n.cfg.BatchMax))
			if err != nil {
				n.logger.Error("replication backfill read failed", "peer", t.p.id, "err", err)
				continue
			}
			req.FromSeq = t.acked
			req.Records = recs
		}
		if err := faults.FireCtx(ctx, faults.ClusterReplicate, n.cfg.ID+"→"+t.p.id); err != nil {
			// The injected partition: the frames never leave this node.
			n.logger.Warn("replication send suppressed", "peer", t.p.id, "err", err)
			continue
		}
		body, err := json.Marshal(req)
		if err != nil {
			n.logger.Error("replication request marshal failed", "err", err)
			return
		}
		var resp replicateResponse
		if err := t.p.client.DoJSON(ctx, http.MethodPost, "/cluster/replicate", body, &resp); err != nil {
			n.logger.Warn("replication send failed", "peer", t.p.id, "err", err)
			continue
		}
		if resp.Rejected {
			n.depose(resp.Term, resp.Leader, "replication rejected by higher term")
			return
		}
		n.mu.Lock()
		t.p.known, t.p.acked = true, resp.HaveSeq
		n.mu.Unlock()
		if resp.HaveSeq < minAcked {
			minAcked = resp.HaveSeq
		}
	}
	n.metrics.Gauge("cluster.replication_lag").Set(float64(seq - minAcked))
}

// applyReplicate is the follower half: terms are checked, the lease
// clock resets, and the records land positionally via
// AppendReplicated. It returns the response plus an HTTP status (a
// non-200 status means the body is an error message, not a response).
func (n *Node) applyReplicate(ctx context.Context, req replicateRequest) (replicateResponse, int, string) {
	n.mu.Lock()
	if n.role == RoleDeposed {
		n.mu.Unlock()
		return replicateResponse{}, http.StatusServiceUnavailable,
			"cluster: node is deposed; restart to rejoin"
	}
	if req.Term < n.term {
		resp := replicateResponse{Term: n.term, Leader: n.leader, Rejected: true}
		n.mu.Unlock()
		n.metrics.Counter("cluster.replicate_rejected").Inc()
		n.logger.Warn("rejected stale-term replication",
			"from", req.Leader, "their_term", req.Term, "our_term", resp.Term)
		return resp, http.StatusOK, ""
	}
	if req.Term > n.term && n.role == RoleLeader {
		// Another node leads a later term: this node's journal holds its
		// own RecTerm (and possibly more) that the new leader's log does
		// not — a fork. Step aside rather than guess.
		n.mu.Unlock()
		n.depose(req.Term, req.Leader, "superseded while leading")
		return replicateResponse{}, http.StatusServiceUnavailable,
			"cluster: node is deposed; restart to rejoin"
	}
	if req.Term > n.term {
		n.term = req.Term
		n.metrics.Gauge("cluster.leader_term").Set(float64(req.Term))
	}
	adopted := n.leader != req.Leader
	n.leader = req.Leader
	n.missed = 0
	term := n.term
	n.mu.Unlock()
	if adopted {
		// Keep /readyz honest: a standby follower is still not-ready
		// (writes forward to the leader), but "no current term" stops
		// being true the moment a heartbeat names one.
		n.srv.SetNotReady(fmt.Sprintf("follower of %s at term %d; writes forward to the leader", req.Leader, term))
	}

	local := n.journal.Sequence()
	if local > req.LeaderSeq {
		// Our log is longer than the leader's whole log: a suffix nobody
		// replicated to us — so it cannot be the fleet's history.
		n.depose(req.Term, req.Leader, "log diverged from leader")
		return replicateResponse{}, http.StatusServiceUnavailable,
			"cluster: node is deposed; restart to rejoin"
	}
	applied := int64(0)
	for i, rec := range req.Records {
		pos := req.FromSeq + uint64(i)
		if pos < local {
			continue // overlap: already applied
		}
		if pos > local {
			break // gap: the leader will backfill from our HaveSeq
		}
		if err := n.journal.AppendReplicated(ctx, rec); err != nil {
			n.logger.Error("replicated append failed", "seq", pos, "err", err)
			break
		}
		local++
		applied++
		if rec.Type == durable.RecTerm {
			// Track term history arriving through the log itself (a
			// replayed election from before this node joined).
			n.mu.Lock()
			if rec.Term > n.term {
				n.term, n.leader = rec.Term, rec.Leader
				term = n.term
			}
			n.mu.Unlock()
		}
	}
	n.metrics.Counter("cluster.records_applied").Add(applied)
	return replicateResponse{Term: term, HaveSeq: n.journal.Sequence()}, http.StatusOK, ""
}
