package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/durable"
)

// Owner maps a dataset ID onto the fleet member responsible for
// holding its shard copy: a stable hash over the sorted roster, so
// every node computes the same owner without coordination. Dataset IDs
// are content hashes already, so ownership spreads evenly.
func Owner(id string, nodeIDs []string) string {
	if len(nodeIDs) == 0 {
		return ""
	}
	ids := append([]string(nil), nodeIDs...)
	sort.Strings(ids)
	h := fnv.New32a()
	_, _ = h.Write([]byte(id)) //lint:allow errdiscard hash.Hash Write never fails
	return ids[int(h.Sum32())%len(ids)]
}

// datasetTransfer moves one spilled dataset between nodes: the spill
// sidecar metadata plus the canonical CSV bytes. The receiver installs
// it under the same content-derived ID and spills it locally, so the
// copy survives the receiver's restart.
type datasetTransfer struct {
	Meta durable.DatasetMeta `json:"meta"`
	CSV  string              `json:"csv"`
}

// pushDatasets walks the leader's registry and pushes each dataset it
// does not own to its shard owner, once. Failures are retried on the
// next tick — the push set only records successes — so a briefly
// unreachable owner catches up as soon as it answers.
func (n *Node) pushDatasets(ctx context.Context) {
	infos := n.srv.Registry().List()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	roster := n.nodeIDs()
	for _, info := range infos {
		owner := Owner(info.ID, roster)
		if owner == n.cfg.ID {
			continue
		}
		n.mu.Lock()
		done := n.pushed[info.ID]
		n.mu.Unlock()
		if done {
			continue
		}
		if err := n.pushDataset(ctx, info.ID, owner); err != nil {
			n.logger.Warn("dataset shard push failed; will retry",
				"dataset", info.ID, "owner", owner, "err", err)
			continue
		}
		n.metrics.Counter("cluster.datasets_pushed").Inc()
		n.logger.Info("dataset shard pushed", "dataset", info.ID, "owner", owner)
		n.mu.Lock()
		n.pushed[info.ID] = true
		n.mu.Unlock()
	}
}

// pushDataset ships one spilled dataset to its owner.
func (n *Node) pushDataset(ctx context.Context, id, owner string) error {
	p := n.peers[owner]
	if p == nil {
		return fmt.Errorf("cluster: owner %q is not a peer", owner)
	}
	sd, err := n.srv.Store().LoadDataset(ctx, id)
	if err != nil {
		return err
	}
	csv, err := os.ReadFile(sd.CSVPath)
	if err != nil {
		return err
	}
	body, err := json.Marshal(datasetTransfer{Meta: sd.Meta, CSV: string(csv)})
	if err != nil {
		return err
	}
	return p.client.DoJSON(ctx, http.MethodPut, "/cluster/datasets/"+url.PathEscape(id), body, nil)
}

// fetchDataset is the serve layer's fetch-on-miss hook: a dataset the
// local registry does not hold is pulled from the fleet — the shard
// owner first, then every other peer, since the owner may be the node
// that just died and any node that touched the dataset holds a spilled
// copy.
func (n *Node) fetchDataset(ctx context.Context, id string) error {
	candidates := make([]string, 0, len(n.peers))
	if owner := Owner(id, n.nodeIDs()); owner != n.cfg.ID {
		candidates = append(candidates, owner)
	}
	for _, pid := range sortedKeys(n.peers) {
		if len(candidates) > 0 && pid == candidates[0] {
			continue
		}
		candidates = append(candidates, pid)
	}
	err := fmt.Errorf("cluster: no peer holds dataset %s", id)
	for _, pid := range candidates {
		p := n.peers[pid]
		if p == nil {
			continue
		}
		var t datasetTransfer
		if ferr := p.client.DoJSON(ctx, http.MethodGet, "/cluster/datasets/"+url.PathEscape(id), nil, &t); ferr != nil {
			err = ferr
			continue
		}
		if ierr := n.installTransfer(ctx, id, t); ierr != nil {
			err = ierr
			continue
		}
		n.metrics.Counter("cluster.datasets_fetched").Inc()
		n.logger.Info("dataset fetched from fleet", "dataset", id, "peer", pid)
		return nil
	}
	return err
}

// installTransfer parses and admits one received dataset under its
// fleet-wide ID, spilling it locally.
func (n *Node) installTransfer(ctx context.Context, id string, t datasetTransfer) error {
	if t.Meta.ID != id {
		return fmt.Errorf("cluster: dataset transfer ID %q does not match %q", t.Meta.ID, id)
	}
	// Transfers carry the canonical spill CSV the sender's server
	// produced, so the upload caps do not apply.
	d, err := dataset.ReadCSVLimit(strings.NewReader(t.CSV), t.Meta.Target, t.Meta.Protected, 0, 0)
	if err != nil {
		return fmt.Errorf("cluster: parse transferred dataset %s: %w", id, err)
	}
	_, err = n.srv.Registry().Install(ctx, id, t.Meta.Name, d, t.Meta.Bytes)
	return err
}

// sortedKeys returns a map's keys in sorted order, for deterministic
// iteration.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
