package cluster

import (
	"context"
	"errors"
	"net/http"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Fleet-wide observability aggregation: the leader answers GET
// /metrics/fleet by snapshotting its own registry and pulling every
// peer's /cluster/obs snapshot in one round of calls, then merging the
// registries (obs.MergeSnapshots: counters sum, gauges keep per-node
// labels, histograms merge bucket-wise). Followers never aggregate —
// the serve layer forwards /metrics/fleet to the leader like any API
// call — so one client round-trip to any node answers for the fleet.

// fleetObs is installed as the serve layer's fleet-view hook at New.
func (n *Node) fleetObs(ctx context.Context) (serve.FleetObs, error) {
	n.mu.Lock()
	role, term := n.role, n.term
	n.mu.Unlock()
	if role != RoleLeader {
		// Reachable only in the handoff window where a just-deposed node
		// still receives an already-forwarded request.
		return serve.FleetObs{}, errors.New("cluster: fleet view: not the leader")
	}
	lag := n.FollowerLag()
	local := n.srv.LocalNodeObs()
	nodes := []serve.NodeObs{local}
	parts := map[string]obs.Snapshot{local.NodeID: local.Metrics}
	for _, id := range sortedKeys(n.peers) {
		p := n.peers[id]
		var no serve.NodeObs
		if err := p.client.DoJSON(ctx, http.MethodGet, "/cluster/obs", nil, &no); err != nil {
			// The unreachable node stays in the view with its error: its
			// absence would read as health.
			no = serve.NodeObs{NodeID: id, Err: err.Error()}
		} else {
			parts[no.NodeID] = no.Metrics
		}
		no.Lag = lag[id]
		nodes = append(nodes, no)
	}
	return serve.FleetObs{
		Leader: n.cfg.ID,
		Term:   term,
		Nodes:  nodes,
		Merged: obs.MergeSnapshots(parts),
	}, nil
}
