package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/serve"
)

// The work-stealing wire protocol. A follower with idle capacity asks
// the leader for queued work (pull, never push: the leader stays the
// only source of truth about what is queued). Both directions are
// term-fenced — a steal or a result carrying a stale term is refused,
// so a job can never complete under two leaderships — and results are
// additionally attempt-fenced: a stealer that outlives its steal
// timeout reports the attempt it was handed, and the re-queued copy
// runs under a later attempt, so the late result cannot finish a job
// that is queued or running again.
type stealRequest struct {
	Term uint64 `json:"term"`
	Node string `json:"node"`
}

// stealResponse carries the stolen job, or a "" JobID when the queue
// has nothing stealable. TraceID is the job's cross-node trace
// identity: the stealer runs under it and its spans graft back into
// the same trace on the leader.
type stealResponse struct {
	JobID   string           `json:"job_id"`
	Request serve.JobRequest `json:"request"`
	Attempt int              `json:"attempt"`
	TraceID string           `json:"trace_id,omitempty"`
}

type stealResult struct {
	Term    uint64          `json:"term"`
	Node    string          `json:"node"`
	JobID   string          `json:"job_id"`
	Attempt int             `json:"attempt"`
	Final   serve.State     `json:"final"`
	Error   string          `json:"error,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	// Spans is the stealer's span tree for the run, shipped home so the
	// leader's per-job trace stitches into one cross-node timeline.
	Spans []obs.SpanSnapshot `json:"spans,omitempty"`
}

// trySteal asks the leader for one queued job and, if one comes back,
// runs it in the background (tracked by the node's WaitGroup, bounded
// by StealMax).
func (n *Node) trySteal(ctx context.Context, term uint64, leader string) {
	if err := faults.FireCtx(ctx, faults.ClusterSteal, n.cfg.ID); err != nil {
		n.logger.Warn("steal attempt suppressed", "err", err)
		return
	}
	p := n.peers[leader]
	if p == nil {
		return
	}
	body, err := json.Marshal(stealRequest{Term: term, Node: n.cfg.ID})
	if err != nil {
		n.logger.Error("steal request marshal failed", "err", err)
		return
	}
	var resp stealResponse
	if err := p.client.DoJSON(ctx, http.MethodPost, "/cluster/steal", body, &resp); err != nil {
		n.logger.Warn("steal request failed", "err", err)
		return
	}
	if resp.JobID == "" {
		return
	}
	n.mu.Lock()
	n.inflight++
	n.mu.Unlock()
	n.metrics.Counter("cluster.steals").Inc()
	n.logger.Info("stole job", "job", resp.JobID, "from", leader, "attempt", resp.Attempt)
	n.wg.Add(1)
	go n.runStolen(term, leader, resp.JobID, resp.Attempt, resp.TraceID, resp.Request)
}

// runStolen executes one stolen job against this node's own pipeline
// and reports the outcome to the leader. The run is bounded by the
// node's lifetime context (Close cancels it); an undeliverable result
// is logged and left to the leader's steal timeout, which re-queues
// the job. The run records its spans under the job's trace ID on a
// local tracer and ships the snapshot home with the result, so the
// leader's GET /jobs/{id}/trace shows the remote execution inline.
func (n *Node) runStolen(term uint64, leader, id string, attempt int, traceID string, req serve.JobRequest) {
	defer n.wg.Done()
	defer func() {
		n.mu.Lock()
		n.inflight--
		n.mu.Unlock()
	}()
	ctx := obs.WithLogger(obs.WithMetrics(n.baseCtx, n.metrics), n.logger)
	tr := obs.NewTracer()
	tr.SetIdentity(n.cfg.ID, traceID)
	ctx = obs.WithTracer(ctx, tr)
	// Downstream hops of this run (shard fetch-on-miss, the result
	// delivery below) carry the trace on their headers via the client.
	ctx = obs.WithTraceContext(ctx, obs.TraceContext{TraceID: traceID, Via: n.cfg.ID})
	ctx, sp := obs.StartSpan(ctx, "cluster.run_stolen")
	sp.SetStr("job", id)
	sp.SetStr("from", leader)
	sp.SetInt("attempt", int64(attempt))

	out := stealResult{Term: term, Node: n.cfg.ID, JobID: id, Attempt: attempt, Final: serve.StateDone}
	res, err := n.srv.RunRequest(ctx, req)
	if err != nil {
		out.Final, out.Error = serve.StateFailed, err.Error()
	} else if out.Result, err = json.Marshal(res); err != nil {
		out.Final, out.Error, out.Result = serve.StateFailed, "stolen result marshal: "+err.Error(), nil
	}
	sp.SetStr("final", string(out.Final))
	sp.End()
	out.Spans = tr.Snapshot()

	body, err := json.Marshal(out)
	if err != nil {
		n.logger.Error("steal result marshal failed", "job", id, "err", err)
		return
	}
	p := n.peers[leader]
	if p == nil {
		return
	}
	if err := p.client.DoJSON(ctx, http.MethodPost, "/cluster/steal/result", body, nil); err != nil {
		n.logger.Warn("stolen result not delivered; leader's steal timeout will re-queue",
			"job", id, "err", err)
	}
}

// expireStolen re-queues stolen jobs whose stealer went silent: every
// leader tick ages the outstanding steals, and one unreported past
// StealTicks goes back on the queue (burning one of the job's attempt
// lives, exactly like a crash interruption would).
func (n *Node) expireStolen(ctx context.Context) {
	n.mu.Lock()
	var expired []string
	for id := range n.stolen {
		n.stolen[id]++
		if n.stolen[id] > n.cfg.StealTicks {
			expired = append(expired, id)
			delete(n.stolen, id)
		}
	}
	n.mu.Unlock()
	sort.Strings(expired)
	for _, id := range expired {
		n.logger.Warn("stolen job unreported past budget; re-queueing", "job", id)
		n.metrics.Counter("cluster.steals_expired").Inc()
		n.events.Append("steal-expired", "job "+id+" unreported past budget; re-queued")
		if err := n.srv.RequeueStolen(ctx, id); err != nil {
			n.logger.Error("re-queue of expired stolen job failed", "job", id, "err", err)
		}
	}
}
