// Package cluster turns a fleet of remedyd nodes into one replicated
// service on nothing but the standard library and the repo's own
// layers: the durable journal becomes a positional replicated log, a
// deterministic lease elects leaders without a wall clock, datasets
// shard across the fleet by content-hash ownership, and idle followers
// steal queued work from the leader.
//
// # Design
//
// One node leads; the rest follow. The leader is the only node whose
// engine serves API traffic — followers forward requests to it — and
// the only node that appends original records to its journal. Each
// leader tick streams the journal's new records to every follower over
// POST /cluster/replicate; a follower applies them positionally (its
// record i is the leader's record i, always) via AppendReplicated, so
// a follower's journal file is byte-identical to the leader's prefix
// it has received.
//
// Leadership is fenced by terms recorded in the journal itself
// (durable.RecTerm). Every replication and steal request carries the
// sender's term; a receiver that has witnessed a higher term rejects
// the request, and a leader whose send is rejected steps down. Terms
// make split-brain harmless rather than impossible: a superseded
// leader is deposed on contact, fences its journal so it can never
// ack another write, and rejoins the fleet live: a later tick probes
// the current leader, the engine demotes, and the node re-enters as
// a follower of the higher term — no restart required.
//
// Forks are reconciled structurally. Every fork begins at a
// leadership change — only leaders append original records, so two
// logs can only disagree from the position where a new leader's
// RecTerm displaced a dead leader's unreplicated tail. Each
// replication request therefore carries the leader's term history
// (every RecTerm's term, leader, and position); a follower compares
// it with its own, truncates its log back to the first disagreement
// (durable.Journal.TruncateTo), and lets the stream re-fill it. A
// crashed leader that restarts with a forked tail — even one the same
// length as the fleet's log — heals on its first heartbeat instead of
// replaying divergent history at a later promotion.
//
// There is no clock anywhere in the control flow. All periodic work —
// heartbeats, lease accounting, promotion, dataset pushes, steal
// attempts, stolen-work timeouts — happens in Tick, which the caller
// drives from a timer (cmd/remedyd) or by hand (tests). A follower
// counts the ticks since it last heard a replication request; when the
// silence exceeds its rank-staggered share of the lease it appends the
// next term's RecTerm to its own journal and promotes, replaying the
// replicated log into a live engine (serve.Server.Promote). Ranks
// stagger deterministically — the first follower in node-ID order
// waits one lease, the second two — so exactly one node moves first.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"repro/internal/durable"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Node roles. A node is a follower from birth until it promotes;
// deposed is a quarantine, not a grave: the journal is fenced and the
// engine idles until tickDeposed (or an inbound replication at a
// current term) rejoins the node as a follower.
const (
	RoleLeader   = "leader"
	RoleFollower = "follower"
	RoleDeposed  = "deposed"
)

// Config wires one node into the fleet. Zero values take the
// documented defaults.
type Config struct {
	// ID is this node's name; it must be a key of Peers.
	ID string
	// Peers maps every fleet member's node ID — this node included —
	// to its base URL. All nodes must agree on this map; it is the
	// election roster and the shard ring.
	Peers map[string]string
	// LeaseTicks is the lease length in ticks (default 3): a follower
	// of rank r among the non-leader node IDs promotes itself after
	// (r+1)*LeaseTicks consecutive silent ticks.
	LeaseTicks int
	// StealMax caps the stolen jobs a follower runs concurrently
	// (default 1; negative disables stealing).
	StealMax int
	// StealTicks is how many leader ticks a stolen job may stay
	// unreported before it is re-queued (default 10*LeaseTicks).
	StealTicks int
	// BatchMax bounds the records in one replication send (default
	// 256); a further-behind follower catches up over several ticks.
	BatchMax int
	// EventCap bounds the operational event log behind /cluster/events
	// (default 256 retained entries; the ring overwrites the oldest).
	EventCap int
	// Retry is the inter-node client policy (zero-value fields take
	// serve.RetryPolicy's defaults).
	Retry serve.RetryPolicy
	// HTTP overrides the transport for inter-node calls and follower
	// forwarding (tests inject httptest clients); nil means the
	// default client.
	HTTP *http.Client
	// Logger receives the node's log lines; nil is silent.
	Logger *obs.Logger
}

func (c Config) withDefaults() Config {
	if c.LeaseTicks == 0 {
		c.LeaseTicks = 3
	}
	if c.StealMax == 0 {
		c.StealMax = 1
	}
	if c.StealTicks == 0 {
		c.StealTicks = 10 * c.LeaseTicks
	}
	if c.BatchMax == 0 {
		c.BatchMax = 256
	}
	if c.EventCap == 0 {
		c.EventCap = 256
	}
	return c
}

// peerState is the leader's view of one follower.
type peerState struct {
	id     string
	url    string
	client *serve.Client
	// known is set once a response told us how much of the log the
	// peer holds; until then sends are pure heartbeats (no records),
	// so a fresh leader never re-streams a log the peer already has.
	known bool
	acked uint64
}

// Node is one fleet member: the replication/election state machine
// wrapped around a serve.Server. It implements serve.ClusterView.
type Node struct {
	cfg     Config
	srv     *serve.Server
	journal *durable.Journal
	metrics *obs.Registry
	logger  *obs.Logger
	// events is the bounded operational event log behind
	// /cluster/events: terms, promotions, depositions, steals.
	events *obs.EventLog

	// applyMu serializes every mutation of the local log and the role
	// transitions that fence it: applyReplicate holds it end to end (two
	// racing replication requests must not both observe the same length
	// and double-append), and promote holds it across its
	// decide-append-switch sequence (a replication landing mid-promotion
	// must either abort the promotion or wait behind it). Lock order:
	// applyMu before mu, never the reverse.
	applyMu sync.Mutex

	mu       sync.Mutex
	role     string
	term     uint64
	leader   string // node ID of the current leader ("" unknown)
	missed   int    // follower: consecutive ticks without a replication request
	peers    map[string]*peerState
	stolen   map[string]int  // leader: outstanding stolen job → silent ticks
	pushed   map[string]bool // leader: dataset IDs already pushed to their shard owner
	inflight int             // follower: stolen jobs executing locally
	// termStarts is the journal's term history: one entry per RecTerm
	// record, in log order. It is the fork-detection fence replication
	// requests carry (see replicate.go) and is kept in lockstep with the
	// journal: seeded by a scan at New, extended by promote and by
	// applied RecTerm records, trimmed by reconciliation truncation.
	termStarts []termStart

	// baseCtx bounds every background stolen-job run; Close cancels it
	// and waits for wg, so a drained node leaks no goroutines. Stolen
	// runs outlive the steal request that started them, so their bound
	// is the node's lifetime, not any caller's.
	baseCtx context.Context //lint:allow ctxfirst node-lifetime bound for background stolen-job runs; Close cancels it
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// New wires srv into the fleet. The server must have a durable store
// (cluster nodes are built with serve.NewFollower). New attaches the
// cluster view, the dataset fetch-on-miss hook, and the forwarding
// client, then bootstraps: a journal that already witnessed a term
// starts as a follower of that term's leader, and a brand-new fleet
// (term zero everywhere) elects the lowest node ID immediately instead
// of waiting out a lease.
func New(ctx context.Context, cfg Config, srv *serve.Server) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.ID == "" {
		return nil, errors.New("cluster: node ID is required")
	}
	if _, ok := cfg.Peers[cfg.ID]; !ok {
		return nil, fmt.Errorf("cluster: node %q is not in the peer map", cfg.ID)
	}
	if srv.Store() == nil {
		return nil, errors.New("cluster: a cluster node needs a durable store")
	}
	n := &Node{
		cfg:     cfg,
		srv:     srv,
		journal: srv.Store().Journal(),
		metrics: srv.Metrics(),
		logger:  cfg.Logger.Scope("cluster"),
		events:  obs.NewEventLog(cfg.EventCap),
		role:    RoleFollower,
		peers:   make(map[string]*peerState, len(cfg.Peers)),
		stolen:  make(map[string]int),
		pushed:  make(map[string]bool),
	}
	n.baseCtx, n.cancel = context.WithCancel(context.Background())
	n.term, n.leader = srv.RecoveredTerm()
	// The serve layer's recovery already reduced the term history —
	// snapshot entries plus the tail's RecTerm records, with absolute
	// sequences — so the node seeds fork detection from that instead of
	// re-scanning a journal whose compacted prefix no longer exists.
	n.termStarts = srv.RecoveredTermStarts()
	for id, u := range cfg.Peers {
		if id == cfg.ID {
			continue
		}
		c := serve.NewRetryingClient(u, cfg.Retry)
		c.HTTP = cfg.HTTP
		n.peers[id] = &peerState{id: id, url: u, client: c}
	}
	srv.SetCluster(n)
	srv.SetDatasetFetcher(n.fetchDataset)
	srv.SetFleetObs(n.fleetObs)
	if cfg.HTTP != nil {
		srv.SetForwardClient(cfg.HTTP)
	}
	n.metrics.Gauge("cluster.leader_term").Set(float64(n.term))
	if n.term == 0 && n.nodeIDs()[0] == cfg.ID {
		if err := n.promote(ctx, 0, "", false); err != nil {
			n.cancel()
			return nil, fmt.Errorf("cluster: bootstrap election: %w", err)
		}
	}
	return n, nil
}

// termStart is one entry of a journal's term history: the RecTerm for
// Term, appended by Leader at log position Seq. Replication requests
// carry the leader's full history so followers can locate forks (see
// the package comment); entries compare by value, all three fields.
// It is the durable layer's TermStart — the same type, not a mirror —
// so a history reduced from a snapshot plugs straight in.
type termStart = durable.TermStart

// nodeIDs returns every fleet member's ID in sorted order — the
// deterministic roster that election ranks and shard ownership hash
// against.
func (n *Node) nodeIDs() []string {
	ids := make([]string, 0, len(n.cfg.Peers))
	for id := range n.cfg.Peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Role implements serve.ClusterView.
func (n *Node) Role() (string, uint64, string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role, n.term, n.leader
}

// LeaderURL implements serve.ClusterView: the base URL follower
// traffic forwards to, "" when this node leads or the leader is
// unknown.
func (n *Node) LeaderURL() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == RoleLeader || n.leader == "" || n.leader == n.cfg.ID {
		return ""
	}
	return n.cfg.Peers[n.leader]
}

// Tick drives all of the node's periodic work: a leader renews its
// lease by replicating (heartbeats included), pushes dataset shards,
// and re-queues overdue stolen jobs; a follower counts the silence,
// promotes itself past its share of the lease, and otherwise tries to
// steal queued work. Tick is not reentrant — one caller drives it,
// from a timer loop (cmd/remedyd) or by hand (tests). A deposed node
// ticks its rejoin probe: it looks for the fleet's current leader and
// re-enters as a follower the moment it finds one.
func (n *Node) Tick(ctx context.Context) {
	ctx = obs.WithLogger(obs.WithMetrics(ctx, n.metrics), n.logger)
	n.mu.Lock()
	role := n.role
	n.mu.Unlock()
	switch role {
	case RoleLeader:
		n.tickLeader(ctx)
	case RoleFollower:
		n.tickFollower(ctx)
	case RoleDeposed:
		n.tickDeposed(ctx)
	}
}

func (n *Node) tickLeader(ctx context.Context) {
	if err := faults.FireCtx(ctx, faults.ClusterLease, n.cfg.ID); err != nil {
		// A stalled leader: local state is intact but nothing goes out,
		// so followers start counting missed ticks.
		n.logger.Warn("lease renewal suppressed", "err", err)
		return
	}
	n.expireStolen(ctx)
	n.pushDatasets(ctx)
	n.replicateAll(ctx)
	n.maybeCompact(ctx)
}

func (n *Node) tickFollower(ctx context.Context) {
	n.mu.Lock()
	n.missed++
	missed, term, leader := n.missed, n.term, n.leader
	inflight := n.inflight
	n.mu.Unlock()

	if missed > n.promotionThreshold(leader) {
		n.logger.Warn("leader silent past lease; promoting",
			"missed_ticks", missed, "leader", leader, "term", term)
		if err := n.promote(ctx, term, leader, true); err != nil {
			n.logger.Error("promotion failed", "err", err)
		}
		return
	}
	n.maybeCompact(ctx)
	if n.cfg.StealMax < 0 || inflight >= n.cfg.StealMax || leader == "" || leader == n.cfg.ID {
		return
	}
	n.trySteal(ctx, term, leader)
}

// maybeCompact runs the store's snapshot-compaction policy against
// this node's own journal (a no-op until remedyd installs one via
// -snapshot-every). Leaders and followers both compact: the rewrite
// keeps every surviving frame at (sequence - base), so positional
// replication is untouched, and a peer left behind the new horizon is
// healed by the leader's install-snapshot path, not by keeping old
// frames around forever.
func (n *Node) maybeCompact(ctx context.Context) {
	did, err := n.srv.Store().MaybeCompact(ctx)
	if err != nil {
		n.logger.Error("journal compaction failed", "err", err)
		return
	}
	if did {
		base := n.journal.Base()
		n.events.Append("compaction", fmt.Sprintf("%s compacted its journal to horizon %d", n.cfg.ID, base))
		n.logger.Info("journal compacted", "base", base)
	}
}

// promotionThreshold is the silent-tick budget before this follower
// moves: rank r among the node IDs with the current leader excluded
// waits (r+1) leases, so successors promote in deterministic order and
// the first one's heartbeats reset everyone behind it.
func (n *Node) promotionThreshold(leader string) int {
	rank := 0
	for _, id := range n.nodeIDs() {
		if id == leader {
			continue
		}
		if id == n.cfg.ID {
			break
		}
		rank++
	}
	return (rank + 1) * n.cfg.LeaseTicks
}

// promote makes this node the next term's leader. The RecTerm record
// is appended before anything else — it is the new term's fencing
// token, and every record promotion appends afterwards (interruption
// bumps, re-queues) is already under it. Then the replicated log is
// replayed into a live engine and the node goes ready.
//
// The whole sequence runs under applyMu, and the decision is
// re-checked there: the tick observed (expectTerm, leader) and a
// silent lease without the lock, so a replication request that landed
// in between — resetting the lease clock, raising the term, or
// appending replicated records where the RecTerm would go — aborts
// the promotion instead of racing it. confirmSilent is false only for
// the bootstrap election, which has no lease to re-check.
func (n *Node) promote(ctx context.Context, expectTerm uint64, leader string, confirmSilent bool) error {
	n.applyMu.Lock()
	defer n.applyMu.Unlock()
	n.mu.Lock()
	if n.role != RoleFollower || n.term != expectTerm ||
		(confirmSilent && n.missed <= n.promotionThreshold(leader)) {
		role, term := n.role, n.term
		n.mu.Unlock()
		n.logger.Info("promotion aborted; a replication arrived since the decision",
			"role", role, "term", term)
		return nil
	}
	newTerm := n.term + 1
	n.mu.Unlock()
	// A node that was deposed and rejoined kept its journal fenced all
	// the way through followership — AppendReplicated ignores the fence,
	// so replication filled it anyway. Promotion is where originating
	// writes become legitimate again.
	n.journal.Unfence()
	seq := n.journal.Sequence()
	// applyMu (held for this whole function) intentionally covers the
	// term-record fsync: the term record IS the fencing token, so no
	// replicated frame may land between deciding to promote and
	// journaling the decision. n.mu was released above; only the
	// promotion fence waits on the disk.
	//lint:allow heldcall applyMu must cover the term-record append: the fencing token has to hit the journal before any replication interleaves
	if err := n.journal.Append(ctx, durable.Record{
		Type: durable.RecTerm, Term: newTerm, Leader: n.cfg.ID,
	}); err != nil {
		return fmt.Errorf("cluster: journal term record: %w", err)
	}
	n.mu.Lock()
	n.term, n.leader, n.role, n.missed = newTerm, n.cfg.ID, RoleLeader, 0
	n.termStarts = append(n.termStarts, termStart{Term: newTerm, Leader: n.cfg.ID, Seq: seq})
	for _, p := range n.peers {
		p.known = false // re-discover every peer's position via heartbeat
	}
	n.mu.Unlock()
	n.metrics.Counter("cluster.promotions").Inc()
	n.metrics.Gauge("cluster.leader_term").Set(float64(newTerm))
	n.events.Append("promoted", fmt.Sprintf("%s promoted to leader at term %d", n.cfg.ID, newTerm))
	n.logger.Info("promoted to leader", "term", newTerm)
	// Promotion replays the journal and re-journals interrupted jobs,
	// all under the applyMu fence — replication must not interleave
	// with recovery, so holding the lock across these fsyncs is the
	// point, not an accident.
	//lint:allow heldcall serve.Promote recovers and re-journals under the applyMu fence by design; replication may not interleave with recovery
	if err := n.srv.Promote(ctx); err != nil {
		return fmt.Errorf("cluster: promote node %s: %w", n.cfg.ID, err)
	}
	return nil
}

// depose retires this node from the stream: a higher term exists, or
// this node's log diverged from its leader's. The journal is fenced
// first — before the role flips, before anything is logged — so a
// stale leader mid-depose can never ack another originating write;
// replicated appends still land, which is how the rejoin path heals
// the log. The node then reports not-ready as rejoining: tickDeposed
// probes for the fleet's current leader and re-enters live.
func (n *Node) depose(term uint64, leader, why string) {
	n.mu.Lock()
	if n.role == RoleDeposed {
		n.mu.Unlock()
		return
	}
	n.journal.Fence()
	n.role = RoleDeposed
	if term > n.term {
		n.term = term
	}
	if leader != "" {
		n.leader = leader
	}
	term = n.term
	n.mu.Unlock()
	n.metrics.Counter("cluster.stepdowns").Inc()
	n.events.Append("deposed", fmt.Sprintf("%s deposed at term %d: %s", n.cfg.ID, term, why))
	n.logger.Warn("deposed", "term", term, "why", why)
	n.srv.SetNotReady(fmt.Sprintf("deposed (%s); rejoining the fleet at term %d", why, term))
}

// tickDeposed is the deposed node's way back in: probe the fleet for
// its current leader (GET /cluster/status, deterministic node-ID
// order) and rejoin as that leader's follower. The probe is read-only
// and fenced by nothing — a deposed node can always ask — so a node
// cut off behind a partition keeps probing each tick until the link
// heals, then rejoins on the first tick that reaches a leader.
func (n *Node) tickDeposed(ctx context.Context) {
	n.mu.Lock()
	term := n.term
	n.mu.Unlock()
	for _, id := range sortedKeys(n.peers) {
		p := n.peers[id]
		var st Status
		if err := p.client.DoJSON(ctx, http.MethodGet, "/cluster/status", nil, &st); err != nil {
			n.logger.Debug("rejoin probe failed", "peer", id, "err", err)
			continue
		}
		if st.Role != RoleLeader || st.Term < term {
			continue
		}
		n.rejoin(ctx, st.Term, st.NodeID)
		return
	}
}

// rejoin re-enters the fleet as a follower of leader at term, without
// a restart. The engine demotes first — every local job is dropped,
// running work is cancelled, nothing is journaled (the fence holds
// until a later promotion) — then the role flips under applyMu so no
// replication interleaves with the transition. The next heartbeat
// from the leader reconciles the journal: a forked suffix truncates
// via the term history, and a node left behind the leader's
// compaction horizon is healed by install-snapshot.
func (n *Node) rejoin(ctx context.Context, term uint64, leader string) {
	n.applyMu.Lock()
	defer n.applyMu.Unlock()
	n.rejoinLocked(ctx, term, leader)
}

// rejoinLocked is rejoin's body for callers already holding applyMu
// (applyReplicate rejoins inline when a current-term leader contacts a
// deposed node directly).
func (n *Node) rejoinLocked(ctx context.Context, term uint64, leader string) {
	n.mu.Lock()
	if n.role != RoleDeposed {
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	// Demote outside n.mu (it takes the engine's locks) but inside
	// applyMu: no replicated record may land between the engine
	// forgetting its jobs and the role flip below.
	n.srv.Demote(ctx)
	n.mu.Lock()
	if n.role != RoleDeposed {
		n.mu.Unlock()
		return
	}
	n.role = RoleFollower
	if term > n.term {
		n.term = term
	}
	n.leader = leader
	n.missed = 0
	term = n.term
	n.mu.Unlock()
	n.metrics.Counter("cluster.rejoins").Inc()
	n.metrics.Gauge("cluster.leader_term").Set(float64(term))
	n.events.Append("rejoined", fmt.Sprintf("%s rejoined as follower of %s at term %d", n.cfg.ID, leader, term))
	n.logger.Info("rejoined the fleet", "leader", leader, "term", term)
	n.srv.SetNotReady(fmt.Sprintf("follower of %s at term %d; writes forward to the leader", leader, term))
}

// FollowerLag implements serve.FleetLag: on the leader, each known
// follower's journal frames behind the local log — the early-warning
// number /readyz and /metrics/fleet surface. Nil on non-leaders and
// for peers whose position is still unknown.
func (n *Node) FollowerLag() map[string]uint64 {
	seq := n.journal.Sequence()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role != RoleLeader {
		return nil
	}
	out := make(map[string]uint64, len(n.peers))
	for id, p := range n.peers {
		if p.known && p.acked <= seq {
			out[id] = seq - p.acked
		}
	}
	return out
}

// Close cancels the node's background stolen-job executors and waits
// for them. Call it after the tick loop and HTTP server have stopped;
// a closed node leaks no goroutines.
func (n *Node) Close() {
	n.cancel()
	n.wg.Wait()
}
