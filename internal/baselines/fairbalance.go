package baselines

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/pattern"
)

// FairBalance is the reweighting baseline of Yu et al. [35]: every
// intersectional subgroup receives not only an equal but a *balanced*
// (1:1) class distribution, targeting equalized odds:
//
//	w(g, y) = |g| / (2 · |g ∩ y|)
//
// so each subgroup keeps its total mass |g| but splits it evenly
// between the classes. On the heavily label-imbalanced datasets of the
// evaluation this costs substantial accuracy (Table III), because the
// training distribution departs far from the test distribution.
type FairBalance struct{}

// Name implements Preprocessor.
func (FairBalance) Name() string { return "FairBalance" }

// Apply implements Preprocessor.
func (FairBalance) Apply(d *dataset.Dataset) (*dataset.Dataset, error) {
	sp, err := pattern.NewSpace(d.Schema)
	if err != nil {
		return nil, err
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("baselines: empty dataset")
	}
	out := d.Clone()
	out.EnsureWeights()
	for _, idx := range leafCells(d, sp) {
		pos, neg := splitByLabel(d, idx)
		g := float64(len(idx))
		for _, members := range [][]int{neg, pos} {
			if len(members) == 0 {
				continue
			}
			w := g / (2 * float64(len(members)))
			for _, i := range members {
				out.Weights[i] = w
			}
		}
	}
	return out, nil
}
