package baselines

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/divexplorer"
	"repro/internal/fairness"
	"repro/internal/ml"
	"repro/internal/pattern"
	"repro/internal/stats"
	"repro/internal/synth"
)

func testSchema() *dataset.Schema {
	return &dataset.Schema{
		Target: "y",
		Attrs: []dataset.Attr{
			{Name: "race", Values: []string{"A", "B"}, Protected: true},
			{Name: "sex", Values: []string{"M", "F"}, Protected: true},
			{Name: "f", Values: []string{"0", "1", "2"}},
		},
	}
}

// skewedData builds a dataset whose subgroups have very different class
// distributions.
func skewedData(t *testing.T) *dataset.Dataset {
	t.Helper()
	d := dataset.New(testSchema())
	r := stats.NewRNG(1)
	for i := 0; i < 4000; i++ {
		row := []int32{int32(r.Intn(2)), int32(r.Intn(2)), int32(r.Intn(3))}
		rate := 0.2
		if row[0] == 1 && row[1] == 0 {
			rate = 0.8
		}
		var label int8
		if r.Float64() < rate {
			label = 1
		}
		d.Append(row, label)
	}
	return d
}

func cellWeightShares(t *testing.T, d *dataset.Dataset) map[string][2]float64 {
	t.Helper()
	sp, err := pattern.NewSpace(d.Schema)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][2]float64{}
	for k, idx := range leafCells(d, sp) {
		var byClass [2]float64
		for _, i := range idx {
			byClass[d.Labels[i]] += d.Weight(i)
		}
		out[sp.String(sp.DecodeKey(k))] = byClass
	}
	return out
}

func TestReweightingEqualizesClassDistribution(t *testing.T) {
	d := skewedData(t)
	out, err := Reweighting{}.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != d.Len() {
		t.Fatal("reweighting must not change the size")
	}
	overallPos := d.BaseRate()
	for name, byClass := range cellWeightShares(t, out) {
		total := byClass[0] + byClass[1]
		if total == 0 {
			continue
		}
		got := byClass[1] / total
		if math.Abs(got-overallPos) > 1e-9 {
			t.Fatalf("%s: weighted positive share %v, want %v", name, got, overallPos)
		}
	}
	// Weight mass per subgroup stays equal to the subgroup size.
	sp, _ := pattern.NewSpace(d.Schema)
	for k, idx := range leafCells(out, sp) {
		var mass float64
		for _, i := range idx {
			mass += out.Weight(i)
		}
		if math.Abs(mass-float64(len(idx))) > 1e-6 {
			t.Fatalf("cell %s mass %v != size %d", sp.String(sp.DecodeKey(k)), mass, len(idx))
		}
	}
}

func TestFairBalanceBalancesClasses(t *testing.T) {
	d := skewedData(t)
	out, err := FairBalance{}.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	for name, byClass := range cellWeightShares(t, out) {
		if byClass[0] == 0 || byClass[1] == 0 {
			continue
		}
		if math.Abs(byClass[0]-byClass[1]) > 1e-9 {
			t.Fatalf("%s: class masses %v vs %v, want equal", name, byClass[0], byClass[1])
		}
	}
}

func TestWeightBaselinesReduceViolation(t *testing.T) {
	d := skewedData(t)
	train, test := d.StratifiedSplit(0.7, 2)
	violation := func(tr *dataset.Dataset) float64 {
		m, err := ml.Train(tr, ml.NewLogisticRegression(ml.LogRegParams{Epochs: 120, LearningRate: 0.8}))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := divexplorer.Explore(test, m.Predict(test), fairness.FPR, divexplorer.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Violation()
	}
	base := violation(train)
	rw, err := Reweighting{}.Apply(train)
	if err != nil {
		t.Fatal(err)
	}
	if v := violation(rw); v > base {
		t.Fatalf("reweighting violation %v > original %v", v, base)
	}
	fb, err := FairBalance{}.Apply(train)
	if err != nil {
		t.Fatal(err)
	}
	if v := violation(fb); v > base {
		t.Fatalf("fairbalance violation %v > original %v", v, base)
	}
}

func TestCoverageMUPs(t *testing.T) {
	d := dataset.New(testSchema())
	r := stats.NewRNG(3)
	// (race=B, sex=F) is nearly absent.
	for i := 0; i < 1000; i++ {
		row := []int32{int32(r.Intn(2)), int32(r.Intn(2)), int32(r.Intn(3))}
		if row[0] == 1 && row[1] == 1 && r.Float64() < 0.98 {
			row[1] = 0
		}
		d.Append(row, int8(r.Intn(2)))
	}
	cov := Coverage{Threshold: 50, Seed: 1}
	mups, err := cov.MUPs(d)
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := pattern.NewSpace(d.Schema)
	found := false
	for _, p := range mups {
		if sp.String(p) == "(race=B, sex=F)" {
			found = true
		}
		// Maximality: all parents covered.
		table := sp.CountAll(d)
		sp.Parents(p, func(q pattern.Pattern) {
			if q.Level() > 0 && table[sp.Key(q)].N < 50 {
				t.Fatalf("MUP %s has uncovered parent %s", sp.String(p), sp.String(q))
			}
		})
	}
	if !found {
		t.Fatalf("(race=B, sex=F) should be a MUP; got %d MUPs", len(mups))
	}
}

func TestCoverageApplyRaisesCounts(t *testing.T) {
	d := dataset.New(testSchema())
	r := stats.NewRNG(4)
	for i := 0; i < 800; i++ {
		row := []int32{int32(r.Intn(2)), int32(r.Intn(2)), int32(r.Intn(3))}
		if row[0] == 1 && row[1] == 1 {
			row[1] = 0 // (B, F) completely absent
		}
		d.Append(row, int8(r.Intn(2)))
	}
	cov := Coverage{Threshold: 40, Seed: 2}
	out, err := cov.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() <= d.Len() {
		t.Fatal("coverage should add tuples")
	}
	sp, _ := pattern.NewSpace(out.Schema)
	p, _ := sp.Parse("race", "B", "sex", "F")
	if got := sp.CountPattern(out, p).N; got < 40 {
		t.Fatalf("(B,F) count after coverage = %d, want >= 40", got)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFairSMOTEBalancesCells(t *testing.T) {
	d := skewedData(t)
	out, err := FairSMOTE{Seed: 5}.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() <= d.Len() {
		t.Fatal("Fair-SMOTE should add synthetic rows")
	}
	sp, _ := pattern.NewSpace(out.Schema)
	for k, idx := range leafCells(out, sp) {
		pos, neg := splitByLabel(out, idx)
		if len(pos) == 0 || len(neg) == 0 {
			continue
		}
		if len(pos) != len(neg) {
			t.Fatalf("cell %s: %d pos vs %d neg after Fair-SMOTE",
				sp.String(sp.DecodeKey(k)), len(pos), len(neg))
		}
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFairSMOTESyntheticRowsStayInCell(t *testing.T) {
	d := skewedData(t)
	out, err := FairSMOTE{Seed: 6}.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	// Protected attribute values of appended rows must equal those of a
	// real cell (crossover cannot mix protected values because both
	// parents share them).
	sp, _ := pattern.NewSpace(d.Schema)
	real := map[uint64]bool{}
	for k := range leafCells(d, sp) {
		real[k] = true
	}
	for i := d.Len(); i < out.Len(); i++ {
		var k uint64
		for s := 0; s < sp.Dim(); s++ {
			k |= uint64(out.Rows[i][sp.AttrIdx[s]]+1) << uint(5*s)
		}
		if !real[k] {
			t.Fatal("synthetic row landed in a nonexistent subgroup")
		}
	}
}

func TestGerryFairReducesViolation(t *testing.T) {
	d := skewedData(t)
	train, test := d.StratifiedSplit(0.7, 7)
	// Baseline violation of a plain LR.
	m, err := ml.Train(train, ml.NewLogisticRegression(ml.LogRegParams{Epochs: 120, LearningRate: 0.8}))
	if err != nil {
		t.Fatal(err)
	}
	rep0, err := divexplorer.Explore(test, m.Predict(test), fairness.FPR, divexplorer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gf, err := TrainGerryFair(train, GerryFairParams{Iterations: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := divexplorer.Explore(test, gf.Predict(test), fairness.FPR, divexplorer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Violation() > rep0.Violation() {
		t.Fatalf("GerryFair violation %v > plain LR %v", rep1.Violation(), rep0.Violation())
	}
	// Training history must be non-empty and end no higher than it
	// started.
	if len(gf.History) == 0 {
		t.Fatal("empty history")
	}
	if last := gf.History[len(gf.History)-1]; last > gf.History[0] {
		t.Fatalf("training violation rose: %v -> %v", gf.History[0], last)
	}
}

func TestGerryFairEmptyTrain(t *testing.T) {
	if _, err := TrainGerryFair(dataset.New(testSchema()), GerryFairParams{}); err == nil {
		t.Fatal("empty training set must error")
	}
}

func TestPreprocessorsOnEmptyAndUnprotected(t *testing.T) {
	empty := dataset.New(testSchema())
	for _, p := range []Preprocessor{Reweighting{}, FairBalance{}, Coverage{}, FairSMOTE{}} {
		if _, err := p.Apply(empty); err == nil {
			t.Fatalf("%s must reject an empty dataset", p.Name())
		}
	}
	noProt := dataset.New(&dataset.Schema{Target: "y",
		Attrs: []dataset.Attr{{Name: "a", Values: []string{"0"}}}})
	noProt.Append([]int32{0}, 1)
	for _, p := range []Preprocessor{Reweighting{}, FairBalance{}, Coverage{}, FairSMOTE{}} {
		if _, err := p.Apply(noProt); err == nil {
			t.Fatalf("%s must reject a schema without protected attributes", p.Name())
		}
	}
}

func TestNames(t *testing.T) {
	if (Reweighting{}).Name() != "Reweighting" ||
		(FairBalance{}).Name() != "FairBalance" ||
		(Coverage{}).Name() != "Coverage" ||
		(FairSMOTE{}).Name() != "Fair-SMOTE" {
		t.Fatal("names")
	}
}

func TestBaselinesOnSyntheticAdultSubset(t *testing.T) {
	// Smoke test on the real evaluation configuration: Adult restricted
	// to {race, gender}, as in Table III.
	d := synth.AdultN(3000, 1)
	s := d.Schema.Clone()
	if err := s.SetProtected("race", "gender"); err != nil {
		t.Fatal(err)
	}
	d = &dataset.Dataset{Schema: s, Rows: d.Rows, Labels: d.Labels}
	for _, p := range []Preprocessor{Reweighting{}, FairBalance{}, Coverage{Seed: 1}, FairSMOTE{Seed: 1}} {
		out, err := p.Apply(d)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
	}
}

func TestGerryFairFNRStatistic(t *testing.T) {
	// Build data with an FNR-skewed subgroup: positives of (race=A)
	// are systematically harder, so an FNR auditor has a target.
	d := dataset.New(testSchema())
	r := stats.NewRNG(21)
	for i := 0; i < 3000; i++ {
		row := []int32{int32(r.Intn(2)), int32(r.Intn(2)), int32(r.Intn(3))}
		rate := 0.5
		if row[0] == 0 {
			rate = 0.25 // fewer positives among race=A: the learner under-predicts them
		}
		var label int8
		if r.Float64() < rate {
			label = 1
		}
		d.Append(row, label)
	}
	train, test := d.StratifiedSplit(0.7, 22)
	gf, err := TrainGerryFair(train, GerryFairParams{Iterations: 8, Statistic: fairness.FNR, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(gf.History) == 0 {
		t.Fatal("no auditing rounds recorded")
	}
	if last := gf.History[len(gf.History)-1]; last > gf.History[0] {
		t.Fatalf("FNR violation rose during training: %v -> %v", gf.History[0], last)
	}
	preds := gf.Predict(test)
	if len(preds) != test.Len() {
		t.Fatal("prediction length")
	}
}
