package baselines

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/pattern"
)

// Reweighting is the Kamiran–Calders pre-processing baseline [19],
// applied at the intersectional-subgroup granularity as in the paper's
// comparison: each (subgroup g, label y) combination receives the
// weight
//
//	w(g, y) = (|g| · |y|) / (N · |g ∩ y|)
//
// — the ratio of the expected to the observed probability of the
// combination under independence of subgroup and label. After
// reweighting, every subgroup carries the dataset's overall class
// distribution, which drives the fairness violation to zero for
// learners that honor sample weights.
type Reweighting struct{}

// Name implements Preprocessor.
func (Reweighting) Name() string { return "Reweighting" }

// Apply implements Preprocessor. The returned dataset shares rows with
// d but carries fresh weights.
func (Reweighting) Apply(d *dataset.Dataset) (*dataset.Dataset, error) {
	sp, err := pattern.NewSpace(d.Schema)
	if err != nil {
		return nil, err
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("baselines: empty dataset")
	}
	out := d.Clone()
	out.EnsureWeights()
	n := float64(d.Len())
	classN := [2]float64{float64(d.Len() - d.PositiveCount()), float64(d.PositiveCount())}
	for _, idx := range leafCells(d, sp) {
		pos, neg := splitByLabel(d, idx)
		g := float64(len(idx))
		byLabel := [2][]int{neg, pos}
		for y, members := range byLabel {
			if len(members) == 0 {
				continue
			}
			w := (g * classN[y]) / (n * float64(len(members)))
			for _, i := range members {
				out.Weights[i] = w
			}
		}
	}
	return out, nil
}
