// Package baselines implements the five subgroup-unfairness mitigation
// methods the paper compares against in §V-B4 / Table III:
//
//   - Coverage (Asudeh et al., ICDE 2018) — pre-processing: detect and
//     patch subgroups with insufficient representation.
//   - Reweighting (Kamiran & Calders, KAIS 2012) — pre-processing:
//     per-(subgroup, label) sample weights equalizing class
//     distribution across subgroups.
//   - FairBalance (Yu et al., 2021) — pre-processing: weights forcing a
//     balanced 1:1 class distribution in every subgroup.
//   - Fair-SMOTE (Chakraborty et al., ESEC/FSE 2021) — pre-processing:
//     kNN-based synthetic oversampling of minority (subgroup, class)
//     cells.
//   - GerryFair (Kearns et al., ICML 2018) — in-processing: a
//     learner/auditor fictitious-play loop (see gerryfair.go for the
//     substitution notes).
//
// The pre-processing baselines implement Preprocessor and can be fed to
// any downstream classifier, exactly like the paper's Remedy method.
package baselines

import (
	"repro/internal/dataset"
	"repro/internal/pattern"
)

// Preprocessor transforms a training dataset to mitigate subgroup
// unfairness. The returned dataset may carry sample weights; callers
// must not assume the input is left unmodified by future
// implementations, so pass a Clone when the original matters.
type Preprocessor interface {
	// Name identifies the method in reports.
	Name() string
	// Apply returns the transformed training set.
	Apply(d *dataset.Dataset) (*dataset.Dataset, error)
}

// leafCells groups instance indices by their full protected-attribute
// assignment (the leaf subgroups), keyed by pattern key. The shared
// substrate of the reweighting-family baselines.
func leafCells(d *dataset.Dataset, sp *pattern.Space) map[uint64][]int {
	dim := sp.Dim()
	cells := make(map[uint64][]int)
	for i, row := range d.Rows {
		var k uint64
		for s := 0; s < dim; s++ {
			k |= uint64(row[sp.AttrIdx[s]]+1) << uint(5*s)
		}
		cells[k] = append(cells[k], i)
	}
	return cells
}

// splitByLabel partitions instance indices by their label.
func splitByLabel(d *dataset.Dataset, idx []int) (pos, neg []int) {
	for _, i := range idx {
		if d.Labels[i] == 1 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	return pos, neg
}
