package baselines

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/pattern"
	"repro/internal/stats"
)

// FairSMOTE is the pre-processing baseline of Chakraborty et al. [8]:
// every (intersectional subgroup, class) cell is oversampled with
// synthetic instances until all cells within a subgroup reach the same
// size, yielding both equal and balanced class distributions. Synthetic
// rows are generated SMOTE-style: a seed instance is combined with one
// of its k nearest neighbors inside the same cell (Hamming distance on
// the categorical attributes), taking each attribute from either
// parent at random — the categorical analogue of SMOTE's interpolation.
//
// The k-nearest-neighbor search per synthetic instance is what makes
// Fair-SMOTE orders of magnitude slower than the other pre-processing
// methods (Table III).
type FairSMOTE struct {
	// K is the neighborhood size; 0 means 5.
	K int
	// Seed drives seed/neighbor/crossover draws.
	Seed int64
}

// Name implements Preprocessor.
func (FairSMOTE) Name() string { return "Fair-SMOTE" }

// Apply implements Preprocessor.
func (f FairSMOTE) Apply(d *dataset.Dataset) (*dataset.Dataset, error) {
	sp, err := pattern.NewSpace(d.Schema)
	if err != nil {
		return nil, err
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("baselines: empty dataset")
	}
	k := f.K
	if k <= 0 {
		k = 5
	}
	rng := stats.NewRNG(f.Seed)
	out := d.Clone()
	for _, idx := range leafCells(d, sp) {
		pos, neg := splitByLabel(d, idx)
		target := len(pos)
		if len(neg) > target {
			target = len(neg)
		}
		for _, cell := range [][]int{neg, pos} {
			if len(cell) == 0 || len(cell) >= target {
				continue
			}
			for add := target - len(cell); add > 0; add-- {
				seed := cell[rng.Intn(len(cell))]
				nb := nearestNeighbor(d, cell, seed, k, rng)
				row := crossover(d.Rows[seed], d.Rows[nb], rng)
				if err := out.Append(row, d.Labels[seed]); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// nearestNeighbor picks uniformly among the k cell members closest to
// seed by Hamming distance (excluding seed itself). Cells of size 1
// return the seed.
func nearestNeighbor(d *dataset.Dataset, cell []int, seed, k int, rng interface{ Intn(int) int }) int {
	if len(cell) == 1 {
		return seed
	}
	type cand struct {
		idx, dist int
	}
	cands := make([]cand, 0, len(cell)-1)
	srow := d.Rows[seed]
	for _, i := range cell {
		if i == seed {
			continue
		}
		dist := 0
		for a, v := range d.Rows[i] {
			if v != srow[a] {
				dist++
			}
		}
		cands = append(cands, cand{i, dist})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].dist != cands[b].dist {
			return cands[a].dist < cands[b].dist
		}
		return cands[a].idx < cands[b].idx
	})
	if k > len(cands) {
		k = len(cands)
	}
	return cands[rng.Intn(k)].idx
}

// crossover builds a synthetic row taking each attribute from either
// parent with equal probability.
func crossover(a, b []int32, rng interface{ Intn(int) int }) []int32 {
	row := make([]int32, len(a))
	for i := range row {
		if rng.Intn(2) == 0 {
			row[i] = a[i]
		} else {
			row[i] = b[i]
		}
	}
	return row
}
