package baselines

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/pattern"
	"repro/internal/stats"
)

// Coverage is the pre-processing baseline of Asudeh et al. [4]: it
// identifies subgroups lacking sufficient representation — the maximal
// uncovered patterns (MUPs) of the protected-attribute lattice — and
// augments the dataset until every identified pattern reaches the
// coverage threshold. Additional tuples are sampled uniformly from the
// subgroup when it is non-empty (as the paper's comparison does), or
// synthesized by combining the pattern with marginal draws for the
// remaining attributes when it is entirely absent.
//
// Coverage addresses representation *quantity*, not class balance, so
// the paper finds it improves accuracy but not subgroup fairness.
type Coverage struct {
	// Threshold is the minimum count per pattern; 0 means 30.
	Threshold int
	// MaxLevel caps the lattice depth inspected; 0 means 2, matching
	// the feasibility constraints in [4].
	MaxLevel int
	// Seed drives the sampling of added tuples.
	Seed int64
}

// Name implements Preprocessor.
func (Coverage) Name() string { return "Coverage" }

// MUPs returns the maximal uncovered patterns: patterns below the
// coverage threshold all of whose parents are covered. Level-ordered,
// deterministic.
func (c Coverage) MUPs(d *dataset.Dataset) ([]pattern.Pattern, error) {
	sp, err := pattern.NewSpace(d.Schema)
	if err != nil {
		return nil, err
	}
	threshold := c.Threshold
	if threshold <= 0 {
		threshold = 30
	}
	maxLevel := c.MaxLevel
	if maxLevel <= 0 {
		maxLevel = 2
	}
	table := sp.CountAll(d)
	var mups []pattern.Pattern
	for _, mask := range sp.Masks() {
		sp.EnumerateNode(mask, func(p pattern.Pattern) {
			l := p.Level()
			if l == 0 || l > maxLevel {
				return
			}
			if table[sp.Key(p)].N >= threshold {
				return
			}
			// Maximality: every parent must be covered.
			maximal := true
			sp.Parents(p, func(q pattern.Pattern) {
				if q.Level() > 0 && table[sp.Key(q)].N < threshold {
					maximal = false
				}
			})
			if maximal {
				mups = append(mups, p.Clone())
			}
		})
	}
	sort.Slice(mups, func(i, j int) bool {
		if li, lj := mups[i].Level(), mups[j].Level(); li != lj {
			return li < lj
		}
		return sp.Key(mups[i]) < sp.Key(mups[j])
	})
	return mups, nil
}

// Apply implements Preprocessor: it raises every MUP to the coverage
// threshold.
func (c Coverage) Apply(d *dataset.Dataset) (*dataset.Dataset, error) {
	sp, err := pattern.NewSpace(d.Schema)
	if err != nil {
		return nil, err
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("baselines: empty dataset")
	}
	threshold := c.Threshold
	if threshold <= 0 {
		threshold = 30
	}
	mups, err := c.MUPs(d)
	if err != nil {
		return nil, err
	}
	out := d.Clone()
	rng := stats.NewRNG(c.Seed)
	baseRate := d.BaseRate()
	// Per-attribute marginal pools for synthesizing absent patterns.
	marginals := make([][]int32, len(d.Schema.Attrs))
	for a := range d.Schema.Attrs {
		marginals[a] = make([]int32, d.Len())
		for i, row := range d.Rows {
			marginals[a][i] = row[a]
		}
	}
	for _, p := range mups {
		members := sp.RowsIn(d, p)
		need := threshold - len(members)
		for k := 0; k < need; k++ {
			var row []int32
			var label int8
			if len(members) > 0 {
				j := members[rng.Intn(len(members))]
				row = append([]int32(nil), d.Rows[j]...)
				label = d.Labels[j]
			} else {
				// Synthesize: pattern values fixed, the rest drawn from
				// the dataset's marginals, label from the base rate.
				row = make([]int32, len(d.Schema.Attrs))
				for a := range row {
					row[a] = marginals[a][rng.Intn(len(marginals[a]))]
				}
				for s, v := range p {
					if v != pattern.Wildcard {
						row[sp.AttrIdx[s]] = int32(v)
					}
				}
				if rng.Float64() < baseRate {
					label = 1
				}
			}
			if err := out.Append(row, label); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
