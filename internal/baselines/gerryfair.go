package baselines

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/divexplorer"
	"repro/internal/fairness"
	"repro/internal/ml"
)

// GerryFairParams configures the in-processing baseline of Kearns et
// al. [21]: fictitious play between a Learner (cost-sensitive
// classification) and an Auditor (most-violated subgroup detection) for
// false-positive subgroup fairness.
//
// Substitution note (DESIGN.md §3): the released GerryFair audits over
// linear threshold functions via a regression oracle; this
// implementation keeps the same learner/auditor loop but the auditor
// searches the complete space of conjunctive protected-attribute
// subgroups — the hypothesis class every other method in the paper's
// comparison uses. The two behaviours that matter for Table III are
// preserved: the fairness violation shrinks over rounds, and training
// cost is far above any pre-processing method.
type GerryFairParams struct {
	// Iterations of the learner/auditor loop; 0 means 25.
	Iterations int
	// Eta is the multiplicative weight bump applied to the negatives of
	// the most violated subgroup; 0 means 0.5.
	Eta float64
	// MinSupport is the auditor's minimum subgroup support; 0 means
	// 0.01.
	MinSupport float64
	// Tolerance stops the loop once the training violation falls below
	// it; 0 means 0.001.
	Tolerance float64
	// Statistic selects the audited measure: fairness.FPR (the
	// original's false-positive auditing, the default) or fairness.FNR
	// for the equalized-odds direction.
	Statistic fairness.Statistic
	// Seed drives the learner.
	Seed int64
}

func (p GerryFairParams) withDefaults() GerryFairParams {
	if p.Iterations <= 0 {
		p.Iterations = 25
	}
	if p.Eta <= 0 {
		p.Eta = 0.5
	}
	if p.MinSupport <= 0 {
		p.MinSupport = 0.01
	}
	if p.Tolerance <= 0 {
		p.Tolerance = 0.001
	}
	if p.Statistic == "" {
		p.Statistic = fairness.FPR
	}
	return p
}

// GerryFairModel is the trained mixture: the uniform average over the
// learner's best responses, as in fictitious play.
type GerryFairModel struct {
	Models []*ml.Model
	// History records the training fairness violation after each round,
	// for convergence inspection.
	History []float64
}

// TrainGerryFair runs the learner/auditor loop on the training set.
func TrainGerryFair(train *dataset.Dataset, params GerryFairParams) (*GerryFairModel, error) {
	p := params.withDefaults()
	if train.Len() == 0 {
		return nil, fmt.Errorf("baselines: empty training set")
	}
	cur := train.Clone()
	cur.EnsureWeights()
	model := &GerryFairModel{}
	// Running sum of the mixture's probabilities on the training set,
	// so each round adds only the newest model's forward pass instead
	// of re-evaluating the whole ensemble.
	probSum := make([]float64, train.Len())
	preds := make([]int, train.Len())
	for it := 0; it < p.Iterations; it++ {
		// Learner best-responds to the current costs (weights) with the
		// linear learner, as in the original's cost-sensitive oracle.
		clf := ml.NewLogisticRegression(ml.LogRegParams{Epochs: 80, LearningRate: 0.8, L2: 1e-4, Seed: p.Seed + int64(it)})
		m, err := ml.Train(cur, clf)
		if err != nil {
			return nil, err
		}
		model.Models = append(model.Models, m)
		for i, pr := range m.PredictProba(train) {
			probSum[i] += pr
		}
		for i := range preds {
			if probSum[i]/float64(len(model.Models)) >= 0.5 {
				preds[i] = 1
			} else {
				preds[i] = 0
			}
		}

		// Auditor: find the most FP-violated subgroup under the current
		// mixture's training predictions.
		rep, err := divexplorer.Explore(train, preds, p.Statistic, divexplorer.Options{MinSupport: p.MinSupport})
		if err != nil {
			return nil, err
		}
		worst, violation := mostViolated(rep)
		model.History = append(model.History, violation)
		if violation < p.Tolerance {
			break
		}
		// Penalize the violated subgroup's conditioning class: for FPR
		// auditing its negatives become more expensive to misclassify,
		// for FNR its positives.
		var penalized int8
		if p.Statistic == fairness.FNR {
			penalized = 1
		}
		for i := range train.Rows {
			if train.Labels[i] == penalized && rep.Space.MatchRow(worst.Pattern, train.Rows[i]) {
				cur.Weights[i] *= 1 + p.Eta
			}
		}
	}
	return model, nil
}

// mostViolated returns the subgroup with the highest FPR violation
// (divergence weighted by its share of the negatives) whose FPR exceeds
// the overall — the direction GerryFair's FP auditor penalizes.
func mostViolated(rep *divexplorer.Report) (divexplorer.Subgroup, float64) {
	totalBase, _ := rep.Stat.BaseCount(rep.OverallConf)
	var worst divexplorer.Subgroup
	var worstV float64
	for _, g := range rep.Subgroups {
		if g.Value <= rep.Overall {
			continue
		}
		baseN, _ := rep.Stat.BaseCount(g.Conf)
		v := g.Divergence * float64(baseN) / float64(totalBase)
		if v > worstV {
			worstV = v
			worst = g
		}
	}
	return worst, worstV
}

// Predict returns the mixture's hard predictions: the average of the
// member models' probabilities thresholded at 0.5.
func (g *GerryFairModel) Predict(d *dataset.Dataset) []int {
	out := make([]int, d.Len())
	if len(g.Models) == 0 {
		return out
	}
	sum := make([]float64, d.Len())
	for _, m := range g.Models {
		for i, p := range m.PredictProba(d) {
			sum[i] += p
		}
	}
	for i := range out {
		if sum[i]/float64(len(g.Models)) >= 0.5 {
			out[i] = 1
		}
	}
	return out
}
