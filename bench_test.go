// Package repro's root benchmark suite regenerates every table and
// figure of the paper's evaluation, one testing.B benchmark per
// artifact (see the per-experiment index in DESIGN.md). The benchmarks
// run the experiments in quick mode so `go test -bench=.` completes in
// minutes; `cmd/experiments` runs the full-size versions.
package repro

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/fairness"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/remedy"
	"repro/internal/synth"
)

const benchSeed = 1

func BenchmarkFig3Validation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(fairness.FPR, benchSeed, true); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTradeoff(b *testing.B, ds string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Tradeoff(ds, benchSeed, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Adult(b *testing.B)      { benchTradeoff(b, "adult") }
func BenchmarkFig5LawSchool(b *testing.B)  { benchTradeoff(b, "lawschool") }
func BenchmarkFig6ProPublica(b *testing.B) { benchTradeoff(b, "propublica") }

func BenchmarkFig7VaryTau(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7("propublica", benchSeed, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8VaryT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8("propublica", benchSeed, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Baselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(benchSeed, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9aIdentifyByAttrs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9a(benchSeed, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9bRemedyByAttrs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9b(benchSeed, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9cIdentifyBySize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9c(benchSeed, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9dRemedyBySize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9d(benchSeed, true); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Component micro-benchmarks -------------------------------------
// These isolate the primitives behind the figures: the naïve vs
// optimized identification gap (Fig. 9a's mechanism), the remedy
// techniques (Fig. 9b/9d), and the shared counting substrate.

func benchData(b *testing.B) *dataset.Dataset {
	b.Helper()
	return synth.CompasN(6172, benchSeed)
}

// reportIdentifyWork attaches the traversal's work counters to the
// benchmark output (BENCH_*.json), so regressions in work done — not
// just wall time — are visible: nodes_visited/op is the number of
// candidate regions examined, neighbor_ops/op the aggregation count
// the optimized algorithm reduces.
func reportIdentifyWork(b *testing.B, m *obs.Registry) {
	b.Helper()
	n := float64(b.N)
	b.ReportMetric(float64(m.Counter("identify.nodes_visited").Value())/n, "nodes_visited/op")
	b.ReportMetric(float64(m.Counter("identify.neighbor_ops").Value())/n, "neighbor_ops/op")
}

func BenchmarkIdentifyNaive(b *testing.B) {
	d := benchData(b)
	cfg := core.Config{TauC: 0.1, T: 1}
	m := obs.NewRegistry()
	ctx := obs.WithMetrics(context.Background(), m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.IdentifyNaiveCtx(ctx, d, cfg); err != nil {
			b.Fatal(err)
		}
	}
	reportIdentifyWork(b, m)
}

func BenchmarkIdentifyOptimized(b *testing.B) {
	d := benchData(b)
	cfg := core.Config{TauC: 0.1, T: 1}
	m := obs.NewRegistry()
	ctx := obs.WithMetrics(context.Background(), m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.IdentifyOptimizedCtx(ctx, d, cfg); err != nil {
			b.Fatal(err)
		}
	}
	reportIdentifyWork(b, m)
}

func BenchmarkRemedy(b *testing.B) {
	d := benchData(b)
	for _, tech := range remedy.Techniques {
		b.Run(string(tech), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := remedy.Apply(d, remedy.Options{
					Identify:  core.Config{TauC: 0.1, T: 1},
					Technique: tech,
					Seed:      benchSeed,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkClassifiers(b *testing.B) {
	d := synth.CompasN(3000, benchSeed)
	for _, kind := range ml.AllModels {
		b.Run(string(kind), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ml.TrainKind(d, kind, benchSeed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
