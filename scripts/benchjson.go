//go:build ignore

// benchjson converts `go test -bench` output on stdin into the
// committed BENCH_*.json artifact format: one object per benchmark
// with every reported metric (ns/op, B/op, allocs/op, and custom
// b.ReportMetric series like nodes_visited/op), plus the run's
// environment header. Run via scripts/bench.sh.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	rep := report{Benchmarks: []benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			fields := strings.Fields(line)
			if len(fields) < 4 {
				continue
			}
			iters, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				continue
			}
			b := benchmark{
				Name:       strings.SplitN(fields[0], "-", 2)[0],
				Iterations: iters,
				Metrics:    map[string]float64{},
			}
			for i := 2; i+1 < len(fields); i += 2 {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					continue
				}
				b.Metrics[fields[i+1]] = v
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
