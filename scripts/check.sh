#!/bin/sh
# check.sh — the CI gate: build, vet, race-enabled tests, and the
# remedylint static-analysis suite over non-test library code.
# Equivalent to `make check` for environments without make.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== remedylint (make lint)"
# The typed replacement for the old grep panic gate: panicgate,
# determinism, ctxfirst, errdiscard, and obspair over the whole module.
# Sanctioned exceptions (remedyctl's blank net/http/pprof import for
# the opt-in -pprof server, say) are waived inline with //lint:allow
# comments; the baseline file is empty and must stay that way.
go run ./cmd/remedylint ./...

echo "== remedylint: interprocedural concurrency/durability analyzers"
# The call-graph-backed analyzers gate the repo's concurrency and
# durability contracts directly: lockorder (no lock-acquisition
# cycles — the applyMu/mu inversion class), heldcall (no blocking
# round-trip/fsync/unbuffered-send while a mutex is held, unless
# waived with the design reason inline), goroleak (every goroutine
# has a cancellation path), journalgate (every job state transition
# in serve/cluster journals before acknowledging — the PR 5
# contract). Any new finding from these fails the gate.
go run ./cmd/remedylint -analyzers lockorder,heldcall,goroleak,journalgate ./...

echo "== obs: vet + race (make obs-check)"
go vet ./internal/obs/...
go test -race ./internal/obs/...

echo "== serve: vet + race + e2e smoke (make serve-check)"
go vet ./internal/serve/... ./cmd/remedyd/...
go test -race ./internal/serve/... ./cmd/remedyd/...
go test -race -run 'TestE2EIdentifyRemedy|TestServeEndToEnd' -count=1 \
    ./internal/serve/ ./cmd/remedyd/

echo "== durable: vet + race chaos tests (make durable-check)"
go vet ./internal/durable/...
go test -race ./internal/durable/...
go test -race -count=1 -run 'Durable|Crash|Recovery|Restart|Retry|Circuit' \
    ./internal/serve/ ./cmd/remedyd/

echo "== cluster: vet + race failover chaos tests (make cluster-check)"
# Replication, leader handoff, sharding, and work stealing under the
# race detector — including the kill-the-leader-mid-identify chaos
# test (fleet IBS byte-identical to a single-node run, exactly-once)
# and the cmd-level two-node failover over real TCP.
go vet ./internal/cluster/...
go test -race -count=1 ./internal/cluster/
go test -race -count=1 -run 'Cluster' ./cmd/remedyd/

echo "== chaos: network faults + kill-switch suite (make chaos-check)"
# The fault-injection gate: the deterministic lossy network
# (drop/dup/delay/partition per directed link, seeded schedules) and
# every chaos scenario built on it — partition → heal → byte-identical
# journals, asymmetric partition during a steal, compaction racing
# replication, and the live-rejoin headline (a deposed node behind the
# compaction horizon rejoins through a flaky link via snapshot
# install, without a restart, and the fleet's IBS stays byte-identical
# to a single-node run).
go test -race -count=1 ./internal/faults/
go test -race -count=1 -run 'Chaos|Deposed|NetFaults' \
    ./internal/cluster/ ./internal/serve/

echo "== fleet observability: stitched trace + federation (make obs-fleet-check)"
# A three-node fleet steals a job: the leader's per-job trace must be
# one stitched timeline with spans from every participating node ID
# under a deterministic trace ID, and /metrics/fleet's merged counters
# must equal the sum of the per-node registries.
go test -race -count=1 -run 'ObsFleet' ./internal/cluster/

echo "== load: harness determinism + multi-tenant admission (make load-check)"
# The load harness's acceptance test (two same-seed runs byte-identical,
# zero lost/duplicated jobs, fairness within 20% of weights, at least
# one response-cache hit) plus the fair-queue/quota/Retry-After/cache
# unit tests, all under the race detector.
go vet ./internal/load/... ./cmd/remedyload/...
go test -race -count=1 ./internal/load/ ./cmd/remedyload/
go test -race -count=1 \
    -run 'FairQueue|RetryAfter|Tenant|Cache|ClientRetry' ./internal/serve/

echo "== go test -race ./..."
go test -race ./...

echo "all checks passed"
