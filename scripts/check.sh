#!/bin/sh
# check.sh — the CI gate: build, vet, race-enabled tests, and the
# no-panic grep gate over non-test library code. Equivalent to
# `make check` for environments without make.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== panic gate"
bad=$(grep -rn "panic(" --include="*.go" internal/ cmd/ examples/ | grep -v "_test.go" || true)
if [ -n "$bad" ]; then
    echo "panic() in non-test code:"
    echo "$bad"
    exit 1
fi
echo "panicgate: ok"

echo "== go test -race ./..."
go test -race ./...

echo "all checks passed"
