#!/bin/sh
# check.sh — the CI gate: build, vet, race-enabled tests, and the
# no-panic grep gate over non-test library code. Equivalent to
# `make check` for environments without make.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== panic gate"
# Scans library, command, and example code. remedyctl's blank
# net/http/pprof import is the one sanctioned exception: the package
# registers debug handlers but the import line itself must not trip a
# stricter gate.
bad=$(grep -rn "panic(" --include="*.go" internal/ cmd/ examples/ \
    | grep -v "_test.go" | grep -v 'net/http/pprof' || true)
if [ -n "$bad" ]; then
    echo "panic() in non-test code:"
    echo "$bad"
    exit 1
fi
echo "panicgate: ok"

echo "== obs: vet + race (make obs-check)"
go vet ./internal/obs/...
go test -race ./internal/obs/...

echo "== serve: vet + race + e2e smoke (make serve-check)"
go vet ./internal/serve/... ./cmd/remedyd/...
go test -race ./internal/serve/... ./cmd/remedyd/...
go test -race -run 'TestE2EIdentifyRemedy|TestServeEndToEnd' -count=1 \
    ./internal/serve/ ./cmd/remedyd/

echo "== go test -race ./..."
go test -race ./...

echo "all checks passed"
