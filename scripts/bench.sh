#!/bin/sh
# bench.sh — run the root benchmark suite (bench_test.go: every paper
# figure in quick mode plus the identify/remedy micro-benchmarks) and
# write the machine-readable BENCH_*.json artifact that tracks the
# repo's perf trajectory across PRs.
#
# Usage:
#   scripts/bench.sh BENCH_8.json           # default -benchtime 5x
#   BENCHTIME=10x scripts/bench.sh out.json # more samples, slower
#
# The default is a fixed -benchtime 5x: every benchmark runs exactly
# five iterations, enough for the tooling to average out per-iteration
# jitter (a 1x run reports a single sample, which BENCH_6.json showed
# to be too noisy to compare across PRs) while staying deterministic —
# a fixed iteration count, unlike a time budget, does the same work on
# a fast and a slow machine.
#
# The JSON carries wall-clock (ns/op), allocation (B/op, allocs/op),
# and the work counters the identify benchmarks report
# (nodes_visited/op, neighbor_ops/op) — regressions in work done are
# visible even when wall time is noisy.
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_dev.json}"
benchtime="${BENCHTIME:-5x}"

echo "== go test -bench . -benchtime $benchtime (writing $out)"
go test -run '^$' -bench . -benchmem -benchtime "$benchtime" -count 1 . \
    | tee /dev/stderr \
    | go run scripts/benchjson.go > "$out"
echo "== wrote $out"
