#!/bin/sh
# bench.sh — run the root benchmark suite (bench_test.go: every paper
# figure in quick mode plus the identify/remedy micro-benchmarks) and
# write the machine-readable BENCH_*.json artifact that tracks the
# repo's perf trajectory across PRs.
#
# Usage:
#   scripts/bench.sh BENCH_7.json          # default -benchtime 1x
#   BENCHTIME=3x scripts/bench.sh out.json # more samples, slower
#
# The JSON carries wall-clock (ns/op), allocation (B/op, allocs/op),
# and the work counters the identify benchmarks report
# (nodes_visited/op, neighbor_ops/op) — regressions in work done are
# visible even when wall time is noisy.
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_dev.json}"
benchtime="${BENCHTIME:-1x}"

echo "== go test -bench . -benchtime $benchtime (writing $out)"
go test -run '^$' -bench . -benchmem -benchtime "$benchtime" -count 1 . \
    | tee /dev/stderr \
    | go run scripts/benchjson.go > "$out"
echo "== wrote $out"
