// compas_audit walks through the paper's motivating analysis (Examples
// 1-6 and Case 1) on the synthetic ProPublica dataset:
//
//  1. Independent group fairness looks fine — the FPR of Males and
//     Females tracks the overall FPR.
//  2. Intersectional subgroups are unfair — (race=Afr-Am, sex=Male) has
//     a much higher FPR.
//  3. The unfairness traces back to representation bias: the unfair
//     subgroups sit in (or dominate) regions whose imbalance score
//     diverges from their neighborhood — the Implicit Biased Set.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/divexplorer"
	"repro/internal/fairness"
	"repro/internal/ml"
	"repro/internal/synth"
)

func main() {
	data := synth.Compas(1)
	train, test := data.StratifiedSplit(0.7, 1)
	base, err := ml.NewClassifier(ml.DT, 1)
	if err != nil {
		log.Fatal(err)
	}
	clf := base.(*ml.DecisionTree)
	model, err := ml.Train(train, clf)
	if err != nil {
		log.Fatal(err)
	}
	preds := model.Predict(test)

	// Which inputs does the tree actually lean on? The protected
	// attributes carry real importance — the unfairness is not an
	// artifact of one proxy feature.
	names := model.Enc.ColumnNames()
	fmt.Println("decision tree feature importance:")
	for i, v := range clf.FeatureImportance() {
		if v >= 0.05 {
			fmt.Printf("  %-20s %.2f\n", names[i], v)
		}
	}
	fmt.Println()

	// Step 1: audit only the single-attribute groups (independent
	// setting). Example 1's observation: gender alone looks fair.
	top, err := divexplorer.Explore(test, preds, fairness.FPR, divexplorer.Options{MaxLevel: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overall FPR: %.3f\n\nindependent groups:\n", top.Overall)
	for _, g := range top.Subgroups {
		fmt.Printf("  %-28s FPR=%.3f Δ=%.3f\n", top.Space.String(g.Pattern), g.Value, g.Divergence)
	}

	// Step 2: audit the full intersectional lattice.
	full, err := divexplorer.Explore(test, preds, fairness.FPR, divexplorer.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmost divergent intersectional subgroups:")
	for i, g := range full.Unfair(0.1) {
		if i == 5 {
			break
		}
		fmt.Printf("  %-40s FPR=%.3f Δ=%.3f support=%.2f\n",
			full.Space.String(g.Pattern), g.Value, g.Divergence, g.Support)
	}

	// Step 2b: attribute the worst subgroup's divergence to its items
	// (Shapley values over sub-patterns): which part of the
	// intersection drives the unfairness?
	worst := full.Subgroups[0]
	contribs, err := full.ShapleyAttribution(test, preds, worst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nitem attribution for %s (Δ=%.3f):\n",
		full.Space.String(worst.Pattern), worst.Divergence)
	for _, c := range contribs {
		fmt.Printf("  %-20s φ=%.3f\n", c.Item, c.Phi)
	}

	// Step 3: connect the unfairness to representation bias (Case 1).
	ibs, err := core.IdentifyOptimized(train, core.Config{TauC: 0.1, T: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nIBS evidence (τ_c=0.1, T=1): %d biased regions\n", len(ibs.Regions))
	unfair := full.Unfair(0.1)
	covered := 0
	for _, g := range unfair {
		in := ibs.Contains(g.Pattern)
		dom := ibs.DominatesSignificant(g.Pattern)
		if in || dom {
			covered++
		}
	}
	fmt.Printf("unfair subgroups explained by IBS: %d of %d\n", covered, len(unfair))
	for i, r := range ibs.Regions {
		if i == 5 {
			break
		}
		fmt.Printf("  %-40s ratio_r=%.2f ratio_rn=%.2f (|r|=%d)\n",
			ibs.Space.String(r.Pattern), r.Ratio, r.NeighborRatio, r.Counts.N)
	}
}
