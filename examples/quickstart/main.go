// Quickstart: the whole pipeline in one screen. Generate a COMPAS-like
// dataset, identify its Implicit Biased Set, remedy the training data
// with preferential sampling, and compare a decision tree's subgroup
// fairness before and after.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ml"
	"repro/internal/remedy"
	"repro/internal/synth"
)

func main() {
	data := synth.Compas(1)
	train, test := data.StratifiedSplit(0.7, 1)
	fmt.Println("dataset:", data)

	// 1. Identify the Implicit Biased Set (Algorithm 1).
	ibs, err := core.IdentifyOptimized(train, core.Config{TauC: 0.1, T: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IBS: %d biased regions; the worst three:\n", len(ibs.Regions))
	for i, r := range ibs.Regions {
		if i == 3 {
			break
		}
		fmt.Printf("  %-40s ratio=%.2f neighborhood=%.2f\n",
			ibs.Space.String(r.Pattern), r.Ratio, r.NeighborRatio)
	}

	// 2. Remedy the biased regions (Algorithm 2).
	repaired, rep, err := remedy.Apply(train, remedy.Options{
		Identify:  core.Config{TauC: 0.1, T: 1},
		Technique: remedy.PreferentialSampling,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remedy: %d regions updated (+%d / -%d instances)\n",
		rep.BiasedRegions, rep.Added, rep.Removed)

	// 3. Train any downstream classifier and audit subgroup fairness.
	before, err := experiments.Evaluate(train, test, ml.DT, 1)
	if err != nil {
		log.Fatal(err)
	}
	after, err := experiments.Evaluate(repaired, test, ml.DT, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before: accuracy=%.3f fairness index FPR=%.2f FNR=%.2f\n",
		before.Accuracy, before.IndexFPR, before.IndexFNR)
	fmt.Printf("after:  accuracy=%.3f fairness index FPR=%.2f FNR=%.2f\n",
		after.Accuracy, after.IndexFPR, after.IndexFNR)
}
