// adult_tradeoff compares the four pre-processing techniques of §IV-A
// on the synthetic AdultCensus data: for each technique, the remedy
// pipeline repairs the training data and a logistic regression is
// audited on the held-out split — the fairness-accuracy trade-off of
// Fig. 4d in miniature.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ml"
	"repro/internal/remedy"
	"repro/internal/synth"
)

func main() {
	// A reduced Adult keeps the example snappy; use synth.Adult(seed)
	// for the full 45,222 rows.
	data := synth.AdultN(8000, 1)
	train, test := data.StratifiedSplit(0.7, 1)
	fmt.Println("dataset:", data)

	tab := &experiments.Table{
		Title:   "Technique comparison (Adult, LG, τ_c=0.5, T=1)",
		Columns: []string{"Technique", "Index(FPR)", "Index(FNR)", "Accuracy", "Δ size"},
	}
	base, err := experiments.Evaluate(train, test, ml.LG, 1)
	if err != nil {
		log.Fatal(err)
	}
	tab.Rows = append(tab.Rows, []string{
		"original",
		fmt.Sprintf("%.3f", base.IndexFPR), fmt.Sprintf("%.3f", base.IndexFNR),
		fmt.Sprintf("%.3f", base.Accuracy), "0",
	})
	for _, tech := range remedy.Techniques {
		repaired, _, err := remedy.Apply(train, remedy.Options{
			Identify:  core.Config{TauC: 0.5, T: 1},
			Technique: tech,
			Seed:      1,
		})
		if err != nil {
			log.Fatalf("%s: %v", tech, err)
		}
		ev, err := experiments.Evaluate(repaired, test, ml.LG, 1)
		if err != nil {
			log.Fatal(err)
		}
		tab.Rows = append(tab.Rows, []string{
			tech.Name(),
			fmt.Sprintf("%.3f", ev.IndexFPR), fmt.Sprintf("%.3f", ev.IndexFNR),
			fmt.Sprintf("%.3f", ev.Accuracy),
			fmt.Sprintf("%+d", repaired.Len()-train.Len()),
		})
	}
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
