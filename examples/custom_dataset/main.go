// custom_dataset shows the library on user-defined data: build a
// synthetic loan-approval dataset with a precisely injected
// representation bias using synth.Custom, export/reload it as CSV (the
// path a real dataset would take), then identify and remedy the bias.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/ml"
	"repro/internal/remedy"
	"repro/internal/synth"
)

func main() {
	schema := &dataset.Schema{
		Target: "approved",
		Attrs: []dataset.Attr{
			{Name: "gender", Values: []string{"male", "female"}, Protected: true},
			{Name: "age", Values: []string{"<30", "30-50", ">50"}, Protected: true, Ordered: true},
			{Name: "region", Values: []string{"urban", "rural"}, Protected: true},
			{Name: "income", Values: []string{"low", "mid", "high"}, Ordered: true},
			{Name: "credit_history", Values: []string{"thin", "fair", "good"}, Ordered: true},
		},
	}
	cfg := synth.CustomConfig{
		Schema: schema,
		Rows:   12000,
		Marginals: [][]float64{
			{0.55, 0.45},
			{0.3, 0.45, 0.25},
			{0.7, 0.3},
			{0.35, 0.45, 0.2},
			{0.25, 0.45, 0.3},
		},
		Intercept: -0.6,
		Weights: map[int][]float64{
			3: {-0.9, 0.1, 1.2}, // income drives approval
			4: {-1.0, 0.2, 1.1}, // credit history too
		},
		Biases: []synth.RegionBias{
			// Historical bias: young rural women were rarely approved
			// in the collected records…
			{Conditions: []string{"gender", "female", "age", "<30", "region", "rural"}, Offset: -1.8},
			// …while older urban men were waved through.
			{Conditions: []string{"gender", "male", "age", ">50", "region", "urban"}, Offset: 1.4},
		},
	}
	data, err := synth.Custom(cfg, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated:", data)

	// Round-trip through CSV, as a real dataset would arrive.
	var buf bytes.Buffer
	if err := data.WriteCSV(&buf); err != nil {
		log.Fatal(err)
	}
	loaded, err := dataset.ReadCSV(&buf, "approved", []string{"gender", "age", "region"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reloaded from CSV:", loaded)

	train, test := loaded.StratifiedSplit(0.7, 1)
	identify := core.Config{TauC: 0.2, T: 1}
	ibs, err := core.IdentifyOptimized(train, identify)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nIBS (τ_c=%.1f): %d regions; the injected ones surface:\n", identify.TauC, len(ibs.Regions))
	for _, r := range ibs.Regions {
		if r.Pattern.Level() == 3 {
			fmt.Printf("  %-48s ratio=%.2f neighborhood=%.2f\n",
				ibs.Space.String(r.Pattern), r.Ratio, r.NeighborRatio)
		}
	}

	before, err := experiments.Evaluate(train, test, ml.RF, 1)
	if err != nil {
		log.Fatal(err)
	}
	repaired, rep, err := remedy.Apply(train, remedy.Options{
		Identify: identify, Technique: remedy.PreferentialSampling, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	after, err := experiments.Evaluate(repaired, test, ml.RF, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nremedy touched %d regions (+%d/-%d)\n", rep.BiasedRegions, rep.Added, rep.Removed)
	fmt.Printf("before: index(FPR)=%.2f index(FNR)=%.2f accuracy=%.3f\n",
		before.IndexFPR, before.IndexFNR, before.Accuracy)
	fmt.Printf("after:  index(FPR)=%.2f index(FNR)=%.2f accuracy=%.3f\n",
		after.IndexFPR, after.IndexFNR, after.Accuracy)
}
