// lawschool_parity audits bar-passage predictions on the synthetic Law
// School dataset with the equalized-odds lens (γ = FNR): students from
// under-represented regions are disproportionately predicted to fail.
// It then contrasts the paper's Remedy with the Reweighting baseline on
// the same training data.
package main

import (
	"fmt"
	"log"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/divexplorer"
	"repro/internal/experiments"
	"repro/internal/fairness"
	"repro/internal/ml"
	"repro/internal/remedy"
	"repro/internal/synth"
)

func main() {
	data := synth.LawSchool(1)
	train, test := data.StratifiedSplit(0.7, 1)
	fmt.Println("dataset:", data)

	audit := func(label string, tr *dataset.Dataset) {
		m, err := ml.TrainKind(tr, ml.RF, 1)
		if err != nil {
			log.Fatal(err)
		}
		preds := m.Predict(test)
		ev, err := experiments.Score(test, preds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%-12s accuracy=%.3f index(FNR)=%.3f index(FPR)=%.3f\n",
			label, ev.Accuracy, ev.IndexFNR, ev.IndexFPR)
		rep, err := divexplorer.Explore(test, preds, fairness.FNR, divexplorer.Options{})
		if err != nil {
			log.Fatal(err)
		}
		for i, g := range rep.Unfair(0.1) {
			if i == 3 {
				break
			}
			fmt.Printf("  %-44s FNR=%.3f (overall %.3f)\n",
				rep.Space.String(g.Pattern), g.Value, rep.Overall)
		}
	}

	audit("original", train)

	repaired, _, err := remedy.Apply(train, remedy.Options{
		Identify:  core.Config{TauC: 0.1, T: 1},
		Technique: remedy.PreferentialSampling,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	audit("remedy", repaired)

	reweighted, err := baselines.Reweighting{}.Apply(train)
	if err != nil {
		log.Fatal(err)
	}
	audit("reweighting", reweighted)
}
