// hiring_parity reproduces the statistical-parity discussion of §VI:
// a hiring model whose acceptance rate looks fair when race and gender
// are analyzed independently (both marginals near 25%) but hides a
// perfectly polarized intersection — green females and purple males are
// accepted at 50%, green males and purple females at 0%. The IBS
// machinery detects the representation bias in each subgroup, and the
// remedy improves parity without ever looking at the model.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/divexplorer"
	"repro/internal/fairness"
	"repro/internal/ml"
	"repro/internal/remedy"
	"repro/internal/stats"
)

func hiringData(seed int64) *dataset.Dataset {
	s := &dataset.Schema{
		Target: "hired",
		Attrs: []dataset.Attr{
			{Name: "race", Values: []string{"green", "purple"}, Protected: true},
			{Name: "gender", Values: []string{"male", "female"}, Protected: true},
			{Name: "experience", Values: []string{"junior", "mid", "senior"}, Ordered: true},
		},
	}
	d := dataset.New(s)
	r := stats.NewRNG(seed)
	for i := 0; i < 8000; i++ {
		row := []int32{int32(r.Intn(2)), int32(r.Intn(2)), int32(r.Intn(3))}
		// Historical hiring: green females and purple males at 50%,
		// the opposite intersections at ~2% (the paper's 0% softened so
		// that a classifier has a few positive examples to learn from).
		rate := 0.02
		if (row[0] == 0) == (row[1] == 1) {
			rate = 0.50
		}
		var label int8
		if r.Float64() < rate {
			label = 1
		}
		d.Append(row, label)
	}
	return d
}

func parityReport(label string, test *dataset.Dataset, preds []int) {
	rep, err := divexplorer.Explore(test, preds, fairness.PositiveRate, divexplorer.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s — overall acceptance rate %.3f\n", label, rep.Overall)
	for _, g := range rep.Subgroups {
		if g.Pattern.Level() == 1 {
			fmt.Printf("  marginal     %-24s rate=%.3f\n", rep.Space.String(g.Pattern), g.Value)
		}
	}
	for _, g := range rep.Subgroups {
		if g.Pattern.Level() == 2 {
			fmt.Printf("  intersection %-24s rate=%.3f Δ=%.3f\n",
				rep.Space.String(g.Pattern), g.Value, g.Divergence)
		}
	}
	fmt.Printf("  statistical-parity fairness index: %.3f\n", rep.FairnessIndex(0.1))
}

func main() {
	data := hiringData(1)
	train, test := data.StratifiedSplit(0.7, 1)

	m, err := ml.TrainKind(train, ml.DT, 1)
	if err != nil {
		log.Fatal(err)
	}
	parityReport("original model", test, m.Predict(test))

	// The IBS view: every polarized intersection is a biased region.
	// With this checkerboard bias structure each region's T=1
	// neighborhood is its exact opposite, so remedying toward it would
	// swap the polarization instead of removing it — the interaction
	// the paper's Limitations section warns about. T = |X| compares
	// each region against *all* other regions and is the recommended
	// setting for small protected sets (§V-B3).
	ibs, err := core.IdentifyOptimized(train, core.Config{TauC: 0.1, T: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nIBS regions (τ_c=0.1, T=|X|=2):\n")
	for _, r := range ibs.Regions {
		fmt.Printf("  %-34s ratio_r=%.2f neighborhood=%.2f\n",
			ibs.Space.String(r.Pattern), r.Ratio, r.NeighborRatio)
	}

	repaired, _, err := remedy.Apply(train, remedy.Options{
		Identify:  core.Config{TauC: 0.1, T: 2},
		Technique: remedy.Massaging,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	m2, err := ml.TrainKind(repaired, ml.DT, 1)
	if err != nil {
		log.Fatal(err)
	}
	parityReport("after remedy (massaging)", test, m2.Predict(test))
}
