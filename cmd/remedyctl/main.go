// Command remedyctl runs the paper's pipeline end-to-end on a CSV
// dataset: identify the Implicit Biased Set, remedy it with a chosen
// pre-processing technique, and audit a downstream classifier before
// and after.
//
// Usage:
//
//	# Identify the IBS of a CSV (label column "two_year_recid",
//	# protected attributes age/race/sex):
//	remedyctl -mode identify -input compas.csv -target two_year_recid \
//	    -protected age,race,sex -tauc 0.1
//
//	# Remedy and write the repaired training data:
//	remedyctl -mode remedy -input compas.csv -target two_year_recid \
//	    -protected age,race,sex -technique PS -output repaired.csv
//
//	# Full audit: train a classifier on original vs remedied data and
//	# compare fairness indices on a held-out split:
//	remedyctl -mode audit -input compas.csv -target two_year_recid \
//	    -protected age,race,sex -model DT
//
//	# Attribute the unfairness of the worst subgroups to their items
//	# (Shapley values over sub-patterns):
//	remedyctl -mode attribute -dataset propublica -model DT
//
// Without -input, -dataset selects a built-in synthetic dataset.
// -mode identify accepts -tree for a Fig. 1-style hierarchy view, and
// -mode audit accepts -save-model to export the trained model as JSON.
//
// With -serve-url, -mode status renders a live fleet table from one
// round-trip to any node — per-node role, term, replication lag, queue
// depth, and job outcomes, plus fleet-wide p50/p99 latency per HTTP
// route estimated from the merged histograms:
//
//	remedyctl -mode status -serve-url http://localhost:8081
//
// With -serve-url the identify/remedy/audit modes run remotely: the
// dataset is registered with a running remedyd, the mode is submitted
// as an async job built from the same flags, and the CLI polls the
// job (interval -poll) until completion, printing the JSON result.
// Ctrl-C cancels the remote job before exiting. Transient server
// failures — a full queue (429), 5xx, transport errors — are retried
// with deterministic backoff, logging "queue full, retrying
// (attempt n/k)"; the CLI exits non-zero only once the retry budget
// is exhausted.
//
// Every mode honors -timeout and SIGINT: on expiry or Ctrl-C the
// pipeline stops at the next cooperative checkpoint and -mode remedy
// reports the partial remediation completed so far before exiting
// non-zero.
//
// Observability: -v / -vv raise the structured log level (info /
// debug), -trace-out <file> dumps the pipeline's span tree as JSON,
// -metrics-out <file> dumps the metrics registry (counters such as
// identify.nodes_visited and remedy.samples_added), and -pprof <addr>
// serves net/http/pprof plus an expvar view of the live metrics on
// /debug/vars for profiling long runs. An interrupted run still
// flushes whatever trace and metrics it accumulated.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" //lint:allow panicgate sanctioned: registers /debug/pprof for the opt-in -pprof server
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/divexplorer"
	"repro/internal/experiments"
	"repro/internal/fairness"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/remedy"
	"repro/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fatal(err)
	}
}

// run parses argv and dispatches to the selected mode. Cancelling ctx
// (SIGINT in main, or a test cancel) aborts the pipeline at its next
// cooperative checkpoint; -timeout layers a deadline on top.
func run(ctx context.Context, argv []string, errw io.Writer) error {
	fs := flag.NewFlagSet("remedyctl", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		mode       = fs.String("mode", "audit", "identify | remedy | audit | attribute | status")
		input      = fs.String("input", "", "input CSV (header row; label column 0/1)")
		target     = fs.String("target", "", "label column name (required with -input)")
		protected  = fs.String("protected", "", "comma-separated protected attribute names (required with -input)")
		dsName     = fs.String("dataset", "propublica", "built-in dataset when -input is absent")
		tauC       = fs.Float64("tauc", 0.1, "imbalance threshold τ_c")
		tFlag      = fs.Int("T", 1, "neighboring-region distance threshold")
		k          = fs.Int("k", core.DefaultMinSize, "minimum region size")
		scopeFlag  = fs.String("scope", "lattice", "identification scope: lattice | leaf | top")
		tech       = fs.String("technique", "PS", "remedy technique: PS | US | DP | MS")
		model      = fs.String("model", "DT", "downstream model for audit: DT | RF | LG | NN")
		output     = fs.String("output", "", "output CSV for -mode remedy")
		saveModel  = fs.String("save-model", "", "in audit mode, save the remedied-data model as JSON")
		tree       = fs.Bool("tree", false, "in identify mode, render the hierarchy view instead of a flat table")
		seed       = fs.Int64("seed", 1, "random seed")
		timeout    = fs.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
		verbose    = fs.Bool("v", false, "info-level structured logging to stderr")
		veryVerb   = fs.Bool("vv", false, "debug-level structured logging to stderr")
		traceOut   = fs.String("trace-out", "", "write the pipeline's span tree as JSON to this file")
		metricsOut = fs.String("metrics-out", "", "write a JSON metrics snapshot to this file")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof and expvar metrics on this address (e.g. localhost:6060)")
		serveURL   = fs.String("serve-url", "", "submit the job to a running remedyd at this base URL instead of running locally")
		pollEvery  = fs.Duration("poll", 200*time.Millisecond, "status poll interval with -serve-url")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Fail fast on configuration before any heavy work: scope, technique,
	// and — for -mode remedy — that the output path is actually writable,
	// so a long remediation cannot die at the final write. The trace and
	// metrics paths get the same upfront check.
	scope, err := parseScope(*scopeFlag)
	if err != nil {
		return err
	}
	technique, err := remedy.ParseTechnique(*tech)
	if err != nil {
		return err
	}
	if *mode == "remedy" && *output != "" {
		if err := checkWritable(*output); err != nil {
			return err
		}
	}
	for _, p := range []string{*traceOut, *metricsOut} {
		if p != "" {
			if err := checkWritable(p); err != nil {
				return err
			}
		}
	}

	// Observability wiring: logger level from -v/-vv, a metrics registry
	// always (snapshotting an idle registry is free), a tracer only when
	// a span dump was requested.
	level := obs.LevelWarn
	if *verbose {
		level = obs.LevelInfo
	}
	if *veryVerb {
		level = obs.LevelDebug
	}
	lg := obs.NewLogger(errw, level)
	ctx = obs.WithLogger(ctx, lg)
	metrics := obs.NewRegistry()
	ctx = obs.WithMetrics(ctx, metrics)
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
	}
	if *pprofAddr != "" {
		if err := servePprof(*pprofAddr, metrics, lg); err != nil {
			return err
		}
	}

	if *mode == "status" {
		if *serveURL == "" {
			return fmt.Errorf("-mode status requires -serve-url")
		}
		return runStatus(ctx, *serveURL, *seed)
	}

	d, err := load(*input, *target, *protected, *dsName, *seed)
	if err != nil {
		return err
	}
	cfg := core.Config{TauC: *tauC, T: *tFlag, MinSize: *k, Scope: scope}

	if *serveURL != "" {
		return runRemote(ctx, *serveURL, *mode, d, *dsName, cfg, technique, *model, *seed, *pollEvery)
	}

	ctx, root := obs.StartSpan(ctx, "remedyctl."+*mode)
	// Flush trace and metrics on every exit path — including timeouts and
	// SIGINT — so an interrupted run still leaves a (partial but valid)
	// record of the work it did.
	defer func() {
		root.End()
		if tracer != nil && *traceOut != "" {
			if werr := writeFileWith(*traceOut, tracer.WriteJSON); werr != nil {
				lg.Error("trace dump failed", "path", *traceOut, "err", werr)
			} else {
				lg.Info("trace written", "path", *traceOut)
			}
		}
		if *metricsOut != "" {
			if werr := writeFileWith(*metricsOut, metrics.WriteJSON); werr != nil {
				lg.Error("metrics dump failed", "path", *metricsOut, "err", werr)
			} else {
				lg.Info("metrics written", "path", *metricsOut)
			}
		}
	}()

	switch *mode {
	case "identify":
		return runIdentify(ctx, d, cfg, *tree)
	case "remedy":
		return runRemedy(ctx, d, cfg, technique, *output, *seed, errw)
	case "audit":
		return runAudit(ctx, d, cfg, technique, ml.ModelKind(*model), *saveModel, *seed)
	case "attribute":
		return runAttribute(ctx, d, ml.ModelKind(*model), *seed)
	}
	return fmt.Errorf("unknown mode %q", *mode)
}

// pipelineMetrics holds the current run's registry; /debug/vars and
// /metrics read through it so tests that call run repeatedly always
// see the live registry. The HTTP publication itself is shared with
// remedyd via the obs helpers (PublishExpvar, SnapshotHandler).
var (
	pipelineMetrics    atomic.Pointer[obs.Registry]
	metricsHandlerOnce sync.Once
)

// servePprof exposes net/http/pprof, the live metrics registry as
// expvar "pipeline" on /debug/vars, and a JSON snapshot on /metrics,
// on addr, in the background, for the lifetime of the process. The
// listener is bound synchronously so a bad address fails the run up
// front.
func servePprof(addr string, m *obs.Registry, lg *obs.Logger) error {
	pipelineMetrics.Store(m)
	obs.PublishExpvar("pipeline", pipelineMetrics.Load)
	metricsHandlerOnce.Do(func() {
		http.Handle("/metrics", obs.SnapshotHandler(pipelineMetrics.Load))
	})
	srv := &http.Server{Addr: addr, Handler: http.DefaultServeMux}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	lg.Info("pprof serving", "addr", ln.Addr().String())
	//lint:allow goroleak debug server lives for the whole process; it dies with it
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			lg.Error("pprof server stopped", "err", err)
		}
	}()
	return nil
}

// runStatus renders the fleet table: one GET /metrics/fleet against
// any node (a follower forwards it to the leader, which fans out to
// /cluster/obs on every peer), so the whole view costs the client one
// round-trip. Per-node rows come from each node's own registry and
// health; the route-latency table reads the merged histograms, so its
// p50/p99 are fleet-wide quantiles estimated from summed buckets.
func runStatus(ctx context.Context, baseURL string, seed int64) error {
	client := serve.NewRetryingClient(baseURL, serve.RetryPolicy{Seed: seed})
	fo, err := client.FleetObs(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("fleet: %d node(s), leader %s, term %d\n", len(fo.Nodes), orDash(fo.Leader), fo.Term)

	nodes := &experiments.Table{
		Columns: []string{"Node", "Role", "Term", "Lag", "Queued", "Running", "Done", "Failed", "Cancelled", "Stolen", "SnapAge", "WAL kB"},
	}
	for _, n := range fo.Nodes {
		if n.Err != "" {
			nodes.Rows = append(nodes.Rows, []string{
				orDash(n.NodeID), "unreachable", "-", "-", "-", "-", "-", "-", "-", "-", "-", "-",
			})
			continue
		}
		// SnapAge counts records appended since the node's last snapshot
		// horizon (its pending compaction debt); WAL kB is the journal
		// file's current size. Both come from the node's own health.
		snapAge, walKB := "-", "-"
		if st := n.Health.Store; st != nil {
			snapAge = fmt.Sprint(st.AgeRecords)
			walKB = fmt.Sprintf("%.1f", float64(st.JournalBytes)/1024)
		}
		c := n.Metrics.Counters
		nodes.Rows = append(nodes.Rows, []string{
			orDash(n.NodeID), orDash(n.Role), fmt.Sprint(n.Term), fmt.Sprint(n.Lag),
			fmt.Sprint(n.Health.Queued), fmt.Sprint(n.Health.Running),
			fmt.Sprint(c["serve.jobs_done"]), fmt.Sprint(c["serve.jobs_failed"]),
			fmt.Sprint(c["serve.jobs_cancelled"]), fmt.Sprint(c["serve.jobs_stolen"]),
			snapAge, walKB,
		})
	}
	if err := nodes.Render(os.Stdout); err != nil {
		return err
	}

	// Per-tenant admission rows come from the leader's health (the
	// leader owns the queue); in single-node mode the one node serves.
	var tenantRows []serve.TenantHealth
	for _, n := range fo.Nodes {
		if n.Err != "" || len(n.Health.Tenants) == 0 {
			continue
		}
		if tenantRows == nil || n.Role == "leader" {
			tenantRows = n.Health.Tenants
		}
	}
	if len(tenantRows) > 0 {
		tenants := &experiments.Table{
			Columns: []string{"Tenant", "Weight", "Queued", "Submitted", "Done", "Failed", "Rejected", "Throttled", "CacheHits"},
		}
		for _, tr := range tenantRows {
			tenants.Rows = append(tenants.Rows, []string{
				tr.Name, fmt.Sprint(tr.Weight), fmt.Sprint(tr.Queued),
				fmt.Sprint(tr.Submitted), fmt.Sprint(tr.Done), fmt.Sprint(tr.Failed),
				fmt.Sprint(tr.Rejected), fmt.Sprint(tr.Throttled), fmt.Sprint(tr.CacheHits),
			})
		}
		fmt.Println()
		if err := tenants.Render(os.Stdout); err != nil {
			return err
		}
	}

	routes := &experiments.Table{Columns: []string{"Route", "Requests", "p50 ms", "p99 ms"}}
	for _, name := range sortedNames(fo.Merged.Histograms) {
		base, labels := obs.SplitLabels(name)
		// Only the per-route series (the unlabeled family is the
		// handler-wide aggregate), and only routes that saw traffic.
		if base != "serve.http_duration_ms" || !strings.HasPrefix(labels, `{route="`) {
			continue
		}
		h := fo.Merged.Histograms[name]
		if h.Count == 0 {
			continue
		}
		route := strings.TrimSuffix(strings.TrimPrefix(labels, `{route="`), `"}`)
		routes.Rows = append(routes.Rows, []string{
			route, fmt.Sprint(h.Count),
			fmt.Sprintf("%.2f", h.Quantile(0.50)), fmt.Sprintf("%.2f", h.Quantile(0.99)),
		})
	}
	if len(routes.Rows) == 0 {
		return nil
	}
	fmt.Println()
	return routes.Render(os.Stdout)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// runRemote is the -serve-url client mode: it registers the loaded
// dataset with a running remedyd (streamed as CSV), submits the
// selected mode as a job built from the same flags the local path
// uses, polls until the job is terminal, and prints the JSON result.
// Cancelling ctx (SIGINT, -timeout) cancels the remote job too before
// returning, so an interrupted client does not leave work running
// server-side.
func runRemote(ctx context.Context, baseURL, mode string, d *dataset.Dataset, name string, cfg core.Config, tech remedy.Technique, model string, seed int64, poll time.Duration) error {
	if mode != "identify" && mode != "remedy" && mode != "audit" {
		return fmt.Errorf("-serve-url supports identify, remedy, and audit, not %q", mode)
	}
	// Transient server trouble — queue backpressure (429), 5xx, transport
	// errors — is retried with deterministic backoff before the CLI gives
	// up; the run only exits non-zero once the whole budget is spent.
	lg := obs.LoggerFrom(ctx)
	client := serve.NewRetryingClient(baseURL, serve.RetryPolicy{
		Seed: seed,
		OnRetry: func(info serve.RetryInfo) {
			if info.Status == http.StatusTooManyRequests {
				lg.Warn("queue full, retrying",
					"attempt", fmt.Sprintf("%d/%d", info.Attempt, info.MaxAttempts),
					"delay", info.Delay)
				return
			}
			lg.Warn("request failed, retrying",
				"attempt", fmt.Sprintf("%d/%d", info.Attempt, info.MaxAttempts),
				"delay", info.Delay, "err", info.Err)
		},
	})
	var protected []string
	for _, a := range d.Schema.Attrs {
		if a.Protected {
			protected = append(protected, a.Name)
		}
	}

	// Stream the dataset up without materializing the CSV in memory.
	pr, pw := io.Pipe()
	//lint:allow goroleak bounded by the upload: UploadDataset drains or closes pr, which unblocks the pipe writer either way
	go func() { pw.CloseWithError(d.WriteCSV(pw)) }()
	info, err := client.UploadDataset(ctx, pr, name, d.Schema.Target, protected)
	if err != nil {
		return err
	}
	fmt.Printf("registered dataset %s (%d rows, %d attrs)\n", info.ID, info.Rows, info.Attrs)

	st, err := client.SubmitJob(ctx, serve.JobRequest{
		Kind:      mode,
		DatasetID: info.ID,
		TauC:      cfg.TauC,
		T:         cfg.T,
		MinSize:   cfg.MinSize,
		Scope:     cfg.Scope.String(),
		Technique: string(tech),
		Model:     model,
		Seed:      seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("submitted %s as %s\n", mode, st.ID)

	st, werr := client.Wait(ctx, st.ID, poll)
	if werr != nil {
		// Interrupted locally: cancel the remote job with a fresh
		// short-lived context (ours is already dead).
		cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if _, cerr := client.Cancel(cctx, st.ID); cerr == nil {
			fmt.Fprintf(os.Stderr, "remedyctl: interrupted, cancelled %s\n", st.ID)
		}
		return werr
	}
	if st.State != serve.StateDone {
		return fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
	}
	var raw json.RawMessage
	if err := client.Result(ctx, st.ID, &raw); err != nil {
		return err
	}
	var pretty map[string]any
	if err := json.Unmarshal(raw, &pretty); err != nil {
		return err
	}
	out, err := json.MarshalIndent(pretty, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", out)
	return nil
}

// writeFileWith creates path and streams write into it.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "remedyctl:", err)
	os.Exit(1)
}

// checkWritable verifies the output path can be created or opened for
// writing. The file is created empty if absent; existing contents are
// left untouched until the remedied dataset is actually written.
func checkWritable(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o666)
	if err != nil {
		return fmt.Errorf("output not writable: %w", err)
	}
	return f.Close()
}

func load(input, target, protected, dsName string, seed int64) (*dataset.Dataset, error) {
	if input == "" {
		spec, err := experiments.LoadDataset(dsName, seed, false)
		if err != nil {
			return nil, err
		}
		fmt.Printf("using built-in %s: %s\n", spec.Name, spec.Data)
		return spec.Data, nil
	}
	if target == "" || protected == "" {
		return nil, fmt.Errorf("-input requires -target and -protected")
	}
	d, err := dataset.ReadCSVFile(input, target, strings.Split(protected, ","))
	if err != nil {
		return nil, err
	}
	fmt.Printf("loaded %s: %s\n", input, d)
	return d, nil
}

func parseScope(s string) (core.Scope, error) {
	switch strings.ToLower(s) {
	case "lattice":
		return core.Lattice, nil
	case "leaf":
		return core.Leaf, nil
	case "top":
		return core.Top, nil
	}
	return 0, fmt.Errorf("unknown scope %q", s)
}

func runIdentify(ctx context.Context, d *dataset.Dataset, cfg core.Config, tree bool) error {
	res, err := core.IdentifyOptimizedCtx(ctx, d, cfg)
	if err != nil {
		return err
	}
	if tree {
		return res.RenderTree(os.Stdout)
	}
	fmt.Printf("IBS: %d biased regions (τ_c=%v, T=%d, k=%d, scope=%s)\n",
		len(res.Regions), cfg.TauC, cfg.T, cfg.MinSize, cfg.Scope)
	tab := &experiments.Table{
		Columns: []string{"Region", "|r|", "|r+|", "|r-|", "ratio_r", "ratio_rn", "gap"},
	}
	for _, r := range res.Regions {
		tab.Rows = append(tab.Rows, []string{
			res.Space.String(r.Pattern),
			fmt.Sprint(r.Counts.N), fmt.Sprint(r.Counts.Pos), fmt.Sprint(r.Counts.Neg()),
			fmt.Sprintf("%.3f", r.Ratio), fmt.Sprintf("%.3f", r.NeighborRatio),
			fmt.Sprintf("%.3f", r.Gap()),
		})
	}
	return tab.Render(os.Stdout)
}

// runAttribute trains a model, finds its most divergent subgroups, and
// prints the Shapley attribution of each one's divergence to its
// pattern items.
func runAttribute(ctx context.Context, d *dataset.Dataset, kind ml.ModelKind, seed int64) error {
	train, test := d.StratifiedSplit(0.7, seed)
	m, err := ml.TrainKindCtx(ctx, train, kind, seed)
	if err != nil {
		return err
	}
	preds := m.Predict(test)
	rep, err := divexplorer.ExploreCtx(ctx, test, preds, fairness.FPR, divexplorer.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("overall FPR %.3f; attributing the top unfair subgroups:\n", rep.Overall)
	for _, g := range rep.TopK(5) {
		contribs, err := rep.ShapleyAttribution(test, preds, g)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s  FPR=%.3f Δ=%.3f support=%.2f\n",
			rep.Space.String(g.Pattern), g.Value, g.Divergence, g.Support)
		for _, c := range contribs {
			fmt.Printf("  %-24s φ=%.3f\n", c.Item, c.Phi)
		}
	}
	return nil
}

func runRemedy(ctx context.Context, d *dataset.Dataset, cfg core.Config, tech remedy.Technique, output string, seed int64, errw io.Writer) error {
	out, rep, err := remedy.ApplyCtx(ctx, d, remedy.Options{Identify: cfg, Technique: tech, Seed: seed})
	if err != nil {
		if rep != nil {
			// Interrupted mid-remediation: surface what was completed so an
			// operator can judge how far the run got.
			fmt.Fprintf(errw, "remedy interrupted: %d regions remedied (+%d duplicated, -%d removed, %d relabeled) before: %v\n",
				len(rep.Actions), rep.Added, rep.Removed, rep.Flipped, err)
		}
		return err
	}
	fmt.Printf("remedied %d biased regions with %s: +%d duplicated, -%d removed, %d relabeled\n",
		rep.BiasedRegions, rep.Technique.Name(), rep.Added, rep.Removed, rep.Flipped)
	fmt.Printf("dataset: %d -> %d instances\n", d.Len(), out.Len())
	if output == "" {
		return nil
	}
	if err := out.WriteCSVFile(output); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", output)
	return nil
}

func runAudit(ctx context.Context, d *dataset.Dataset, cfg core.Config, tech remedy.Technique, kind ml.ModelKind, saveModel string, seed int64) error {
	train, test := d.StratifiedSplit(0.7, seed)
	fmt.Printf("split: %d train / %d test; model %s\n", train.Len(), test.Len(), kind)

	var lastClf ml.Classifier
	show := func(label string, tr *dataset.Dataset) error {
		clf, err := ml.NewClassifier(kind, seed)
		if err != nil {
			return err
		}
		m, err := ml.TrainCtx(ctx, tr, clf)
		if err != nil {
			return err
		}
		lastClf = clf
		preds := m.Predict(test)
		ev, err := experiments.Score(test, preds)
		if err != nil {
			return err
		}
		fmt.Printf("%-9s accuracy=%.3f index(FPR)=%.3f index(FNR)=%.3f violation=%.4f\n",
			label, ev.Accuracy, ev.IndexFPR, ev.IndexFNR, ev.Violation)
		rep, err := divexplorer.ExploreCtx(ctx, test, preds, fairness.FPR, divexplorer.Options{})
		if err != nil {
			return err
		}
		unfair := rep.Unfair(0.1)
		limit := 5
		if len(unfair) < limit {
			limit = len(unfair)
		}
		for _, g := range unfair[:limit] {
			fmt.Printf("          unfair %s: FPR=%.3f (overall %.3f, Δ=%.3f, support %.2f)\n",
				rep.Space.String(g.Pattern), g.Value, rep.Overall, g.Divergence, g.Support)
		}
		return nil
	}

	if err := show("original", train); err != nil {
		return err
	}
	remedied, rep, err := remedy.ApplyCtx(ctx, train, remedy.Options{Identify: cfg, Technique: tech, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("remedy: %d biased regions, +%d/-%d/%d flips (%s)\n",
		rep.BiasedRegions, rep.Added, rep.Removed, rep.Flipped, rep.Technique.Name())
	if err := show("remedied", remedied); err != nil {
		return err
	}
	if saveModel != "" {
		if err := ml.SaveFile(saveModel, lastClf); err != nil {
			return err
		}
		fmt.Printf("saved remedied-data model to %s\n", saveModel)
	}
	return nil
}
