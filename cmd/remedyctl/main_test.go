package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
)

func TestParseScope(t *testing.T) {
	cases := map[string]core.Scope{
		"lattice": core.Lattice,
		"Leaf":    core.Leaf,
		"TOP":     core.Top,
	}
	for in, want := range cases {
		got, err := parseScope(in)
		if err != nil || got != want {
			t.Fatalf("parseScope(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseScope("sideways"); err == nil {
		t.Fatal("unknown scope must error")
	}
}

func TestLoadBuiltin(t *testing.T) {
	d, err := load("", "", "", "propublica", 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != synth.CompasSize {
		t.Fatalf("rows = %d", d.Len())
	}
	if _, err := load("", "", "", "bogus", 1); err == nil {
		t.Fatal("unknown builtin must error")
	}
}

func TestLoadCSVRequiresFlags(t *testing.T) {
	if _, err := load("some.csv", "", "", "", 1); err == nil {
		t.Fatal("-input without -target/-protected must error")
	}
}

func TestLoadCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "compas.csv")
	d := synth.CompasN(500, 2)
	if err := d.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := load(path, "two_year_recid", "age,race,sex", "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 500 {
		t.Fatalf("rows = %d", got.Len())
	}
	if len(got.Schema.ProtectedIdx()) != 3 {
		t.Fatal("protected attributes not applied")
	}
}

func TestRunIdentifyAndRemedy(t *testing.T) {
	// The command handlers write to stdout; silence them through a pipe
	// to keep test output clean while exercising the full paths.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	d := synth.CompasN(2000, 3)
	cfg := core.Config{TauC: 0.1, T: 1}
	if err := runIdentify(d, cfg, false); err != nil {
		t.Fatal(err)
	}
	if err := runIdentify(d, cfg, true); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "repaired.csv")
	if err := runRemedy(d, cfg, "MS", out, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("remedy output not written: %v", err)
	}
	modelPath := filepath.Join(t.TempDir(), "model.json")
	if err := runAudit(d, cfg, "PS", "DT", modelPath, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(modelPath); err != nil {
		t.Fatalf("model not saved: %v", err)
	}
}
