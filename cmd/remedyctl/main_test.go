package main

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/synth"
)

func TestParseScope(t *testing.T) {
	cases := map[string]core.Scope{
		"lattice": core.Lattice,
		"Leaf":    core.Leaf,
		"TOP":     core.Top,
	}
	for in, want := range cases {
		got, err := parseScope(in)
		if err != nil || got != want {
			t.Fatalf("parseScope(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseScope("sideways"); err == nil {
		t.Fatal("unknown scope must error")
	}
}

func TestLoadBuiltin(t *testing.T) {
	d, err := load("", "", "", "propublica", 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != synth.CompasSize {
		t.Fatalf("rows = %d", d.Len())
	}
	if _, err := load("", "", "", "bogus", 1); err == nil {
		t.Fatal("unknown builtin must error")
	}
}

func TestLoadCSVRequiresFlags(t *testing.T) {
	if _, err := load("some.csv", "", "", "", 1); err == nil {
		t.Fatal("-input without -target/-protected must error")
	}
}

func TestLoadCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "compas.csv")
	d := synth.CompasN(500, 2)
	if err := d.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := load(path, "two_year_recid", "age,race,sex", "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 500 {
		t.Fatalf("rows = %d", got.Len())
	}
	if len(got.Schema.ProtectedIdx()) != 3 {
		t.Fatal("protected attributes not applied")
	}
}

// silenceStdout redirects the handlers' stdout chatter to /dev/null for
// the duration of the test.
func silenceStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() { os.Stdout = old; devnull.Close() })
}

func TestRunIdentifyAndRemedy(t *testing.T) {
	silenceStdout(t)
	ctx := context.Background()

	d := synth.CompasN(2000, 3)
	cfg := core.Config{TauC: 0.1, T: 1}
	if err := runIdentify(ctx, d, cfg, false); err != nil {
		t.Fatal(err)
	}
	if err := runIdentify(ctx, d, cfg, true); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "repaired.csv")
	if err := runRemedy(ctx, d, cfg, "MS", out, 1, io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("remedy output not written: %v", err)
	}
	modelPath := filepath.Join(t.TempDir(), "model.json")
	if err := runAudit(ctx, d, cfg, "PS", "DT", modelPath, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(modelPath); err != nil {
		t.Fatalf("model not saved: %v", err)
	}
}

// TestRunErrorPaths drives the full CLI entry point through its
// configuration failures: each must be rejected up front, before any
// identification or remediation work starts.
func TestRunErrorPaths(t *testing.T) {
	silenceStdout(t)
	ctx := context.Background()

	cases := []struct {
		name string
		argv []string
		want string
	}{
		{"bad technique", []string{"-mode", "remedy", "-technique", "XX"}, "technique"},
		{"bad scope", []string{"-mode", "identify", "-scope", "sideways"}, "scope"},
		{"missing target", []string{"-mode", "identify", "-input", "some.csv"}, "-target"},
		{"bad mode", []string{"-mode", "frobnicate", "-dataset", "propublica"}, "mode"},
		{"bad model kind", []string{"-mode", "audit", "-dataset", "propublica", "-model", "XGB"}, "unknown model"},
		{"bad flag", []string{"-no-such-flag"}, "flag"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(ctx, tc.argv, io.Discard)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error", tc.argv)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %q, want mention of %q", tc.argv, err, tc.want)
			}
		})
	}
}

// TestRunRemedyRejectsUnwritableOutput asserts the -output path is
// validated before the remediation runs.
func TestRunRemedyRejectsUnwritableOutput(t *testing.T) {
	silenceStdout(t)
	out := filepath.Join(t.TempDir(), "no", "such", "dir", "out.csv")
	err := run(context.Background(), []string{"-mode", "remedy", "-dataset", "propublica", "-output", out}, io.Discard)
	if err == nil {
		t.Fatal("unwritable -output must error")
	}
	if !strings.Contains(err.Error(), "not writable") {
		t.Fatalf("err = %q, want upfront writability failure", err)
	}
}

// TestRunObservabilityDump is the acceptance run for the obs layer: a
// full audit on the synthetic Adult dataset with -vv -trace-out
// -metrics-out must leave a span tree covering identify, remedy,
// train, and audit, and non-zero work counters.
func TestRunObservabilityDump(t *testing.T) {
	silenceStdout(t)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.json")
	err := run(context.Background(), []string{
		"-mode", "audit", "-dataset", "adult", "-vv",
		"-trace-out", tracePath, "-metrics-out", metricsPath,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct{ Spans []obs.SpanSnapshot }
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	byName := map[string]int{}
	var rootID uint64
	for _, s := range trace.Spans {
		byName[s.Name]++
		if s.Unfinished {
			t.Fatalf("completed run left unfinished span %q", s.Name)
		}
		if s.Name == "remedyctl.audit" {
			rootID = s.ID
			if s.Parent != 0 {
				t.Fatal("root span must have no parent")
			}
		}
	}
	if rootID == 0 {
		t.Fatal("no remedyctl.audit root span")
	}
	// Every pipeline stage must appear in the tree.
	for _, want := range []string{"core.identify.node", "remedy.apply", "remedy.region", "ml.train", "divexplorer.explore"} {
		if byName[want] == 0 {
			t.Fatalf("span tree missing stage %q (have %v)", want, byName)
		}
	}
	if byName["ml.train"] != 2 {
		t.Fatalf("audit trains original + remedied, want 2 ml.train spans, got %d", byName["ml.train"])
	}

	raw, err = os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics are not valid JSON: %v", err)
	}
	for _, c := range []string{"identify.nodes_visited", "identify.regions_flagged", "remedy.samples_added", "divexplorer.itemsets"} {
		if snap.Counters[c] == 0 {
			t.Fatalf("counter %s is zero after a full audit (have %v)", c, snap.Counters)
		}
	}
}

// TestRunRemedyCancelled asserts a cancelled context aborts the remedy
// pipeline with context.Canceled and prints the partial report.
func TestRunRemedyCancelled(t *testing.T) {
	silenceStdout(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var errbuf strings.Builder
	err := run(ctx, []string{"-mode", "remedy", "-dataset", "propublica"}, &errbuf)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run under cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestRunServeURL drives the -serve-url client mode against an
// in-process remedyd: the CLI uploads the dataset, submits the job,
// polls to completion, and prints the JSON result.
func TestRunServeURL(t *testing.T) {
	silenceStdout(t)
	ctx := context.Background()
	srv := serve.New(serve.Config{Workers: 2, QueueDepth: 8})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		hs.Close()
	})

	csvPath := filepath.Join(t.TempDir(), "compas.csv")
	if err := synth.CompasN(800, 4).WriteCSVFile(csvPath); err != nil {
		t.Fatal(err)
	}
	common := []string{
		"-serve-url", hs.URL, "-poll", "5ms",
		"-input", csvPath, "-target", "two_year_recid", "-protected", "age,race,sex",
	}
	for _, mode := range []string{"identify", "remedy"} {
		if err := run(ctx, append([]string{"-mode", mode}, common...), io.Discard); err != nil {
			t.Fatalf("remote %s: %v", mode, err)
		}
	}

	// Modes without a remote counterpart are rejected up front.
	err := run(ctx, append([]string{"-mode", "train"}, common...), io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-serve-url supports") {
		t.Fatalf("remote train = %v, want unsupported-mode error", err)
	}

	// A dead server surfaces the transport error, not a hang.
	err = run(ctx, []string{"-mode", "identify", "-serve-url", "http://127.0.0.1:1",
		"-input", csvPath, "-target", "two_year_recid", "-protected", "age,race,sex"}, io.Discard)
	if err == nil {
		t.Fatal("unreachable server must error")
	}
}

// TestRunServeURLRetriesQueueFull fakes a remedyd whose queue is full
// for the first two submissions: the CLI must log "queue full,
// retrying (attempt n/k)" and still succeed, and a server that never
// recovers must surface the final 429 after the retry budget.
func TestRunServeURLRetriesQueueFull(t *testing.T) {
	silenceStdout(t)
	var submits int
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(v); err != nil {
			t.Error(err)
		}
	}
	mux.HandleFunc("POST /datasets", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, serve.DatasetInfo{ID: "ds-1", Target: "two_year_recid", Rows: 10})
	})
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		if submits++; submits <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			writeJSON(w, map[string]string{"error": "job queue full"})
			return
		}
		writeJSON(w, serve.JobStatus{ID: "job-000001", State: serve.StateQueued})
	})
	mux.HandleFunc("GET /jobs/job-000001", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, serve.JobStatus{ID: "job-000001", State: serve.StateDone})
	})
	mux.HandleFunc("GET /jobs/job-000001/result", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"regions": []any{}})
	})
	hs := httptest.NewServer(mux)
	defer hs.Close()

	csvPath := filepath.Join(t.TempDir(), "compas.csv")
	if err := synth.CompasN(50, 4).WriteCSVFile(csvPath); err != nil {
		t.Fatal(err)
	}
	args := []string{"-mode", "identify", "-serve-url", hs.URL, "-poll", "5ms",
		"-input", csvPath, "-target", "two_year_recid", "-protected", "age,race,sex"}
	var errbuf strings.Builder
	if err := run(context.Background(), args, &errbuf); err != nil {
		t.Fatalf("run with transient 429s: %v (log: %s)", err, errbuf.String())
	}
	if !strings.Contains(errbuf.String(), "queue full, retrying") ||
		!strings.Contains(errbuf.String(), "1/4") {
		t.Fatalf("missing queue-full retry lines in log:\n%s", errbuf.String())
	}

	// Never recovers: the run fails with the final 429 only after the
	// whole budget is spent.
	submits = -1000
	errbuf.Reset()
	err := run(context.Background(), args, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("exhausted retries = %v, want the final 429", err)
	}
}
