package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// TestEveryRunnerExecutes runs the complete experiment registry in
// quick mode — the wiring regression net for the CLI: every id must
// produce at least one non-empty, renderable table in all three
// formats.
func TestEveryRunnerExecutes(t *testing.T) {
	ids := map[string]bool{}
	for _, r := range runners() {
		r := r
		t.Run(r.id, func(t *testing.T) {
			if ids[r.id] {
				t.Fatalf("duplicate experiment id %q", r.id)
			}
			ids[r.id] = true
			if r.desc == "" {
				t.Fatal("missing description")
			}
			tables, err := r.run(1, true)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tab := range tables {
				if len(tab.Columns) == 0 || len(tab.Rows) == 0 {
					t.Fatalf("empty table %q", tab.Title)
				}
				for _, f := range []experiments.Format{
					experiments.FormatText, experiments.FormatMarkdown, experiments.FormatCSV,
				} {
					var buf bytes.Buffer
					if err := tab.RenderAs(&buf, f); err != nil {
						t.Fatalf("render %s: %v", f, err)
					}
					if buf.Len() == 0 {
						t.Fatalf("empty %s rendering", f)
					}
				}
			}
		})
	}
	// The registry must cover every paper artifact id.
	for _, want := range []string{
		"tab2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"tab3", "fig9a", "fig9b", "fig9c", "fig9d",
	} {
		if !ids[want] {
			t.Fatalf("registry missing paper artifact %q", want)
		}
	}
	// And the documented extensions.
	for _, want := range []string{"robust", "parity", "ablate", "cost"} {
		if !ids[want] {
			t.Fatalf("registry missing extension %q", want)
		}
	}
}

// TestWriteTables covers the -out persistence path.
func TestWriteTables(t *testing.T) {
	dir := t.TempDir()
	tab := &experiments.Table{Title: "t", Columns: []string{"a"}, Rows: [][]string{{"1"}}}
	if err := writeTables(dir, "demo", []*experiments.Table{tab, tab}, experiments.FormatMarkdown); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/demo.md")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(string(data), "### t") != 2 {
		t.Fatalf("expected both tables in the file:\n%s", data)
	}
}
