// Command experiments regenerates the paper's tables and figures on the
// synthetic datasets.
//
// Usage:
//
//	experiments -run all            # everything (slow: full-size data)
//	experiments -run fig3,tab3      # a subset
//	experiments -run fig4 -quick    # reduced data sizes
//	experiments -list               # show available experiment ids
//
// Experiment ids: tab2, fig3, fig4, fig5, fig6, fig7, fig8, tab3,
// fig9a, fig9b, fig9c, fig9d, plus the extensions robust (multi-seed
// mean±std), ablate (engineering ablations), and cost (§VI
// cost-sensitive limitation probe). Use -format markdown|csv and
// -out <dir> to persist tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/fairness"
)

type runner struct {
	id   string
	desc string
	run  func(seed int64, quick bool) ([]*experiments.Table, error)
}

func runners() []runner {
	return []runner{
		{"tab2", "Table II: dataset characteristics", func(seed int64, quick bool) ([]*experiments.Table, error) {
			t, err := experiments.TableII(seed, quick)
			return []*experiments.Table{t}, err
		}},
		{"fig3", "Fig. 3: unfair subgroups vs IBS (ProPublica)", func(seed int64, quick bool) ([]*experiments.Table, error) {
			var out []*experiments.Table
			for _, stat := range []fairness.Statistic{fairness.FPR, fairness.FNR} {
				r, err := experiments.Fig3(stat, seed, quick)
				if err != nil {
					return nil, err
				}
				out = append(out, r.Table())
			}
			return out, nil
		}},
		{"fig4", "Fig. 4: fairness-accuracy trade-off (Adult)", tradeoff("adult")},
		{"fig5", "Fig. 5: fairness-accuracy trade-off (Law School)", tradeoff("lawschool")},
		{"fig6", "Fig. 6: fairness-accuracy trade-off (ProPublica)", tradeoff("propublica")},
		{"fig7", "Fig. 7: varying τ_c (ProPublica, Adult)", func(seed int64, quick bool) ([]*experiments.Table, error) {
			var out []*experiments.Table
			for _, ds := range []string{"propublica", "adult"} {
				r, err := experiments.Fig7(ds, seed, quick)
				if err != nil {
					return nil, err
				}
				out = append(out, r.Table())
			}
			return out, nil
		}},
		{"fig8", "Fig. 8: T=1 vs T=|X| (ProPublica, Adult)", func(seed int64, quick bool) ([]*experiments.Table, error) {
			var out []*experiments.Table
			for _, ds := range []string{"propublica", "adult"} {
				r, err := experiments.Fig8(ds, seed, quick)
				if err != nil {
					return nil, err
				}
				out = append(out, r.Table())
			}
			return out, nil
		}},
		{"tab3", "Table III: baseline comparison (Adult, X={race,gender}, LG)", func(seed int64, quick bool) ([]*experiments.Table, error) {
			r, err := experiments.Table3(seed, quick)
			if err != nil {
				return nil, err
			}
			return []*experiments.Table{r.Table()}, nil
		}},
		{"fig9a", "Fig. 9a: identification runtime vs |X|", func(seed int64, quick bool) ([]*experiments.Table, error) {
			r, err := experiments.Fig9a(seed, quick)
			if err != nil {
				return nil, err
			}
			return []*experiments.Table{r.Table()}, nil
		}},
		{"fig9b", "Fig. 9b: remedy runtime vs |X|", func(seed int64, quick bool) ([]*experiments.Table, error) {
			r, err := experiments.Fig9b(seed, quick)
			if err != nil {
				return nil, err
			}
			return []*experiments.Table{r.Table()}, nil
		}},
		{"fig9c", "Fig. 9c: identification runtime vs data size", func(seed int64, quick bool) ([]*experiments.Table, error) {
			r, err := experiments.Fig9c(seed, quick)
			if err != nil {
				return nil, err
			}
			return []*experiments.Table{r.Table()}, nil
		}},
		{"fig9d", "Fig. 9d: remedy runtime vs data size", func(seed int64, quick bool) ([]*experiments.Table, error) {
			r, err := experiments.Fig9d(seed, quick)
			if err != nil {
				return nil, err
			}
			return []*experiments.Table{r.Table()}, nil
		}},
		{"robust", "Extension: multi-seed mean±std of the headline comparison", func(seed int64, quick bool) ([]*experiments.Table, error) {
			var out []*experiments.Table
			for _, ds := range []string{"propublica", "adult"} {
				r, err := experiments.Robustness(ds, []int64{seed, seed + 1, seed + 2, seed + 3, seed + 4}, quick)
				if err != nil {
					return nil, err
				}
				out = append(out, r.Table())
			}
			return out, nil
		}},
		{"parity", "Extension: §VI statistical parity before/after remedy", func(seed int64, quick bool) ([]*experiments.Table, error) {
			r, err := experiments.Parity(seed, quick)
			if err != nil {
				return nil, err
			}
			return []*experiments.Table{r.Table()}, nil
		}},
		{"ablate", "Extension: engineering ablations (incremental counts, parallel identify, one-shot remedy)", func(seed int64, quick bool) ([]*experiments.Table, error) {
			r, err := experiments.Ablations(seed, quick)
			if err != nil {
				return nil, err
			}
			return r.Tables(), nil
		}},
		{"cost", "Extension: §VI limitation probe — remedy under cost-sensitive thresholds", func(seed int64, quick bool) ([]*experiments.Table, error) {
			var out []*experiments.Table
			for _, ds := range []string{"propublica", "adult"} {
				r, err := experiments.Limitations(ds, seed, quick)
				if err != nil {
					return nil, err
				}
				out = append(out, r.Table())
			}
			return out, nil
		}},
	}
}

func tradeoff(ds string) func(int64, bool) ([]*experiments.Table, error) {
	return func(seed int64, quick bool) ([]*experiments.Table, error) {
		r, err := experiments.Tradeoff(ds, seed, quick)
		if err != nil {
			return nil, err
		}
		return r.Tables(), nil
	}
}

func main() {
	runFlag := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	quick := flag.Bool("quick", false, "reduced data sizes for a fast pass")
	seed := flag.Int64("seed", 1, "random seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	formatFlag := flag.String("format", "text", "output format: text, markdown, csv")
	outDir := flag.String("out", "", "also write each experiment's tables to <out>/<id>.<ext>")
	flag.Parse()

	format, err := experiments.ParseFormat(*formatFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	rs := runners()
	if *list {
		for _, r := range rs {
			fmt.Printf("%-6s %s\n", r.id, r.desc)
		}
		return
	}
	want := map[string]bool{}
	if *runFlag != "all" {
		for _, id := range strings.Split(*runFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	ran := 0
	timing := &experiments.Table{
		Title:   "Stage timings",
		Columns: []string{"stage", "tables", "seconds"},
	}
	total := time.Duration(0)
	for _, r := range rs {
		if *runFlag != "all" && !want[r.id] {
			continue
		}
		ran++
		fmt.Printf("== %s: %s ==\n", r.id, r.desc)
		start := time.Now()
		tables, err := r.run(*seed, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		total += elapsed
		timing.Rows = append(timing.Rows, []string{
			r.id, fmt.Sprint(len(tables)), fmt.Sprintf("%.2f", elapsed.Seconds()),
		})
		for _, t := range tables {
			if err := t.RenderAs(os.Stdout, format); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		if *outDir != "" {
			if err := writeTables(*outDir, r.id, tables, format); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fmt.Printf("(%s in %.1fs)\n\n", r.id, elapsed.Seconds())
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched %q; use -list\n", *runFlag)
		os.Exit(1)
	}
	// Per-stage timing summary: where the wall-clock went across the
	// whole run, in the same renderable Table the experiments use.
	timing.Rows = append(timing.Rows, []string{"total", "", fmt.Sprintf("%.2f", total.Seconds())})
	if err := timing.RenderAs(os.Stdout, format); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *outDir != "" {
		if err := writeTables(*outDir, "timings", []*experiments.Table{timing}, format); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// writeTables persists one experiment's tables under dir, one file per
// experiment id with every table concatenated.
func writeTables(dir, id string, tables []*experiments.Table, format experiments.Format) error {
	ext := map[experiments.Format]string{
		experiments.FormatText:     "txt",
		experiments.FormatMarkdown: "md",
		experiments.FormatCSV:      "csv",
	}[format]
	f, err := os.Create(filepath.Join(dir, id+"."+ext))
	if err != nil {
		return err
	}
	defer f.Close()
	for _, t := range tables {
		if err := t.RenderAs(f, format); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(f); err != nil {
			return err
		}
	}
	return f.Close()
}
