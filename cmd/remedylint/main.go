// Command remedylint is the repository's static-analysis gate: it
// machine-checks the correctness contracts the reproduction's
// auditability rests on (panic-free libraries, seeded-RNG-only
// randomness, context-first cancellation, checked errors, balanced
// observability spans) using the stdlib-only framework in
// internal/analysis.
//
// Usage:
//
//	remedylint [flags] [packages]
//
// Packages are directories or recursive patterns ("./...", the
// default). Flags:
//
//	-analyzers all|name,name   subset of the suite to run
//	-json                      emit the versioned JSON report
//	-baseline file             baseline of grandfathered findings,
//	                           relative to the module root
//	                           (default .remedylint-baseline.json)
//	-write-baseline            regenerate the baseline from current
//	                           findings instead of failing on them
//	-list                      print the suite with docs and exit
//	-graph                     dump the interprocedural view (call-graph
//	                           summary, lock classes, lock-order edges)
//	                           and exit without running analyzers
//	-timings                   print per-analyzer wall-clock timing
//	                           after the findings
//
// Exit status: 0 when no new findings, 1 when findings survive the
// baseline and //lint:allow suppressions, 2 on operational errors
// (bad flags, unloadable packages, type-check failures).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analysis/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("remedylint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		analyzerSpec  = fs.String("analyzers", "all", "comma-separated analyzers to run, or \"all\"")
		jsonOut       = fs.Bool("json", false, "emit the versioned JSON report instead of text")
		baselinePath  = fs.String("baseline", ".remedylint-baseline.json", "baseline file of grandfathered findings (relative to the module root)")
		writeBaseline = fs.Bool("write-baseline", false, "regenerate the baseline from current findings and exit")
		list          = fs.Bool("list", false, "list the analyzer suite and exit")
		graph         = fs.Bool("graph", false, "dump the interprocedural view (call graph, lock classes, lock-order edges) and exit")
		timings       = fs.Bool("timings", false, "print per-analyzer wall-clock timing after the findings")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	selected, err := analyzers.Select(*analyzerSpec)
	if err != nil {
		fmt.Fprintln(stderr, "remedylint:", err)
		return 2
	}
	if *list {
		for _, a := range selected {
			fmt.Fprintf(stdout, "%s\n    %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "remedylint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "remedylint:", err)
		return 2
	}

	if *graph {
		if err := analyzers.WriteGraph(stdout, analysis.BuildProgram(pkgs)); err != nil {
			fmt.Fprintln(stderr, "remedylint:", err)
			return 2
		}
		return 0
	}

	bpath := *baselinePath
	if !filepath.IsAbs(bpath) {
		bpath = filepath.Join(loader.ModuleDir, bpath)
	}
	baseline, err := analysis.ReadBaseline(bpath)
	if err != nil {
		fmt.Fprintln(stderr, "remedylint:", err)
		return 2
	}

	res := analysis.Run(pkgs, selected, baseline, loader.ModuleDir)

	if *writeBaseline {
		if err := analysis.NewBaseline(res.Findings).WriteFile(bpath); err != nil {
			fmt.Fprintln(stderr, "remedylint:", err)
			return 2
		}
		fmt.Fprintf(stdout, "remedylint: wrote %d finding(s) to %s\n", len(res.Findings), bpath)
		return 0
	}

	if *jsonOut {
		if err := analysis.WriteJSON(stdout, res); err != nil {
			fmt.Fprintln(stderr, "remedylint:", err)
			return 2
		}
	} else if err := analysis.WriteText(stdout, res); err != nil {
		fmt.Fprintln(stderr, "remedylint:", err)
		return 2
	}
	if *timings {
		fmt.Fprintln(stdout, "timing:")
		for _, row := range res.TimingRows() {
			fmt.Fprintf(stdout, "  %s\n", row)
		}
	}

	// A tree that does not type-check cannot be trusted to be clean.
	if len(res.TypeErrors) > 0 {
		return 2
	}
	if len(res.Findings) > 0 {
		return 1
	}
	return 0
}
