package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// chdir switches the working directory for one test and restores it on
// cleanup. (testing.T.Chdir needs a newer Go than go.mod declares.)
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Errorf("restoring working directory: %v", err)
		}
	})
}

// scratchModule lays out a throwaway module and chdirs into it.
func scratchModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module scratch\n\ngo 1.22\n"
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	chdir(t, dir)
	return dir
}

const violations = `package lib

func helper() error { return nil }

func boom() {
	panic("boom")
}

func drop() {
	_ = helper()
}
`

func TestViolationsFailWithPositions(t *testing.T) {
	scratchModule(t, map[string]string{"internal/lib/lib.go": violations})

	var out, errb bytes.Buffer
	if code := run([]string{"-json", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	var rep struct {
		Version  int                `json:"version"`
		Findings []analysis.Finding `json:"findings"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out.String())
	}
	want := []struct {
		analyzer string
		line     int
	}{
		{"panicgate", 6},
		{"errdiscard", 10},
	}
	if rep.Version != 1 || len(rep.Findings) != len(want) {
		t.Fatalf("report = %+v, want version 1 with %d findings", rep, len(want))
	}
	for i, w := range want {
		f := rep.Findings[i]
		if f.Analyzer != w.analyzer || f.File != "internal/lib/lib.go" || f.Line != w.line {
			t.Errorf("finding %d = %s, want %s at internal/lib/lib.go:%d", i, f, w.analyzer, w.line)
		}
	}
}

func TestAnalyzersFlagNarrowsTheRun(t *testing.T) {
	scratchModule(t, map[string]string{"internal/lib/lib.go": violations})

	var out, errb bytes.Buffer
	if code := run([]string{"-analyzers", "panicgate", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	if strings.Contains(out.String(), "errdiscard") {
		t.Errorf("-analyzers panicgate must not run errdiscard:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "panic call in non-test code") {
		t.Errorf("panicgate finding missing:\n%s", out.String())
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-analyzers", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr = %q, want the available-analyzer hint", errb.String())
	}
}

func TestListPrintsTheSuite(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"ctxfirst", "determinism", "errdiscard", "obspair", "panicgate"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestAllowSuppressesInline(t *testing.T) {
	scratchModule(t, map[string]string{"internal/lib/lib.go": `package lib

func sanctioned() {
	panic("unreachable by construction") //lint:allow panicgate scratch fixture
}
`})
	var out, errb bytes.Buffer
	if code := run([]string{"-analyzers", "panicgate", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "1 suppressed") {
		t.Errorf("summary should count the suppression:\n%s", out.String())
	}
}

func TestWriteBaselineGrandfathersOnlyCurrentDebt(t *testing.T) {
	dir := scratchModule(t, map[string]string{"internal/lib/lib.go": violations})

	var out, errb bytes.Buffer
	if code := run([]string{"-write-baseline", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("-write-baseline exit = %d, want 0; stderr: %s", code, errb.String())
	}
	if _, err := os.Stat(filepath.Join(dir, ".remedylint-baseline.json")); err != nil {
		t.Fatalf("baseline file not written: %v", err)
	}

	// The grandfathered tree is green...
	out.Reset()
	if code := run([]string{"./..."}, &out, &errb); code != 0 {
		t.Fatalf("baselined tree exit = %d, want 0; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "2 baselined") {
		t.Errorf("summary should count baselined findings:\n%s", out.String())
	}

	// ...but new debt still fails, with the new position reported.
	newFile := filepath.Join(dir, "internal", "lib", "fresh.go")
	if err := os.WriteFile(newFile, []byte("package lib\n\nimport \"math/rand\"\n\nfunc roll() int { return rand.Intn(6) }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"./..."}, &out, &errb); code != 1 {
		t.Fatalf("fresh violation exit = %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "internal/lib/fresh.go:3") {
		t.Errorf("fresh finding position missing:\n%s", out.String())
	}
}

// TestSelfCheck is the acceptance gate: remedylint, run over this
// repository with the full suite and the committed baseline, reports
// nothing. Keeping the tree clean is part of every change; fix or
// waive findings rather than relaxing this test.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository from source")
	}
	chdir(t, filepath.Join("..", ".."))
	var out, errb bytes.Buffer
	if code := run([]string{"./..."}, &out, &errb); code != 0 {
		t.Fatalf("remedylint over the repository exited %d, want 0:\n%s%s", code, out.String(), errb.String())
	}
	if strings.Contains(out.String(), "warning") && !strings.Contains(out.String(), "0 warning(s)") {
		t.Errorf("self-check must be warning-free:\n%s", out.String())
	}
}

// -graph dumps the interprocedural evidence instead of running
// analyzers: the call-graph summary, interned lock classes, and the
// observed lock-order edges with their witness sites.
func TestGraphDumpsLockOrder(t *testing.T) {
	scratchModule(t, map[string]string{
		"p/p.go": `package p

import "sync"

type box struct {
	a, b sync.Mutex
}

func (x *box) swap() {
	x.a.Lock()
	x.b.Lock()
	x.b.Unlock()
	x.a.Unlock()
}
`,
	})
	var out, errb bytes.Buffer
	if code := run([]string{"-graph", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	text := out.String()
	for _, want := range []string{
		"callgraph:", "lock classes: 2", "p.box.a", "p.box.b",
		"lock-order edges: 1", "p.box.a -> p.box.b",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("graph dump missing %q:\n%s", want, text)
		}
	}
}

// -timings appends per-analyzer wall-clock rows (plus the shared
// call-graph build) to the text report.
func TestTimingsRowsPrinted(t *testing.T) {
	scratchModule(t, map[string]string{
		"p/p.go": "package p\n\nfunc ok() {}\n",
	})
	var out, errb bytes.Buffer
	if code := run([]string{"-timings", "-analyzers", "lockorder,heldcall", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	text := out.String()
	for _, want := range []string{"timing:", "lockorder", "heldcall", "(callgraph)"} {
		if !strings.Contains(text, want) {
			t.Errorf("timing output missing %q:\n%s", want, text)
		}
	}
}
