package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/synth"
)

// reservePort grabs an ephemeral port and releases it: a fleet roster
// must name every node's address before any node starts listening.
// The gap between release and rebind is a real (tiny) race; the test
// fails loudly, not subtly, if the port is snatched.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	return addr
}

// startClusterNode boots one fleet member through the real entry
// point and returns a kill func (cancel + wait) that reports run's
// exit error.
func startClusterNode(t *testing.T, id, addr, dir, peers string) func() error {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			// Heartbeats every 10ms with a 25-tick lease: wide enough that
			// scheduler jitter under -race cannot fake a silent leader, and
			// still a sub-second failover when one really dies.
			"-addr", addr, "-workers", "1", "-data-dir", dir,
			"-node-id", id, "-peers", peers, "-lease", "25", "-tick", "10ms",
		}, io.Discard)
	}()
	var stopErr error
	stopped := false
	stop := func() error {
		if stopped {
			return stopErr
		}
		stopped = true
		cancel()
		select {
		case stopErr = <-done:
		case <-time.After(15 * time.Second):
			stopErr = context.DeadlineExceeded
		}
		return stopErr
	}
	t.Cleanup(func() { _ = stop() }) //lint:allow errdiscard exit already checked where it matters
	return stop
}

// waitLive polls a node's liveness until it answers.
func waitLive(t *testing.T, c *serve.Client) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := c.Livez(context.Background()); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("node never came up")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeClusterFailover boots a two-node fleet through the real
// binary entry point: traffic sent to the follower lands on the
// leader, and when the leader process dies the follower promotes
// itself and still holds the replicated job history.
func TestServeClusterFailover(t *testing.T) {
	ctx := context.Background()
	addrA, addrB := reservePort(t), reservePort(t)
	peers := "node-a=http://" + addrA + ",node-b=http://" + addrB

	stopA := startClusterNode(t, "node-a", addrA, t.TempDir(), peers)
	startClusterNode(t, "node-b", addrB, t.TempDir(), peers)

	policy := serve.RetryPolicy{MaxAttempts: 5, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	cA := serve.NewRetryingClient("http://"+addrA, policy)
	cB := serve.NewRetryingClient("http://"+addrB, policy)
	waitLive(t, cA)
	waitLive(t, cB)

	// node-a (lowest ID, fresh fleet) bootstraps itself leader; node-b
	// follows and forwards. The upload and job below go to node-b but
	// must run on node-a.
	d := synth.CompasN(300, 1)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	var info serve.DatasetInfo
	deadline := time.Now().Add(10 * time.Second)
	for {
		var err error
		payload := bytes.NewReader(buf.Bytes())
		info, err = cB.UploadDataset(ctx, payload, "compas", "two_year_recid", []string{"age", "race", "sex"})
		if err == nil {
			break
		}
		// The follower forwards only once a heartbeat has taught it who
		// leads; until then it answers 503.
		if time.Now().After(deadline) {
			t.Fatalf("upload via follower never succeeded: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	st, err := cB.SubmitJob(ctx, serve.JobRequest{Kind: "train", DatasetID: info.ID, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = cB.Wait(ctx, st.ID, 10*time.Millisecond); err != nil || st.State != serve.StateDone {
		t.Fatalf("job via follower: %+v, %v", st, err)
	}
	if _, err := cA.Job(ctx, st.ID); err != nil {
		t.Fatalf("job did not land on the leader: %v", err)
	}

	// The job's final "done" record rides node-a's next replication
	// tick. Hold the kill until node-b has acked the whole log —
	// otherwise the record legitimately dies with node-a and the
	// history check below races the heartbeat interval.
	deadline = time.Now().Add(10 * time.Second)
	for {
		var cs struct {
			Seq   uint64            `json:"seq"`
			Acked map[string]uint64 `json:"acked"`
		}
		resp, err := http.Get("http://" + addrA + "/cluster/status")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&cs)
			_ = resp.Body.Close()
		}
		if err == nil && cs.Seq > 0 && cs.Acked["node-b"] == cs.Seq {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never caught up to the leader's log")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Kill the leader. Within a few lease ticks node-b promotes itself
	// and starts answering ready; the finished job's history rode the
	// replicated journal.
	if err := stopA(); err != nil {
		t.Fatalf("leader shutdown: %v", err)
	}
	deadline = time.Now().Add(15 * time.Second)
	for {
		if _, err := cB.Readyz(ctx); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never promoted after leader death")
		}
		time.Sleep(20 * time.Millisecond)
	}
	got, err := cB.Job(ctx, st.ID)
	if err != nil {
		t.Fatalf("job history lost in failover: %v", err)
	}
	if got.State != serve.StateDone {
		t.Fatalf("replicated job state = %s, want done", got.State)
	}
}

// TestClusterFlagValidation pins the startup contract: a fleet member
// must be durable and must appear in its own roster.
func TestClusterFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"node-id without data-dir", []string{"-node-id", "a", "-peers", "a=http://x"}},
		{"peers without node-id", []string{"-peers", "a=http://x"}},
		{"roster missing self", []string{"-node-id", "b", "-data-dir", t.TempDir(), "-peers", "a=http://x"}},
		{"malformed roster entry", []string{"-node-id", "a", "-data-dir", t.TempDir(), "-peers", "nourl"}},
		{"duplicate roster entry", []string{"-node-id", "a", "-data-dir", t.TempDir(), "-peers", "a=http://x,a=http://y"}},
	}
	for _, tc := range cases {
		if err := run(context.Background(), tc.args, io.Discard); err == nil {
			t.Errorf("%s: run accepted bad flags", tc.name)
		}
	}
}
