package main

import (
	"bytes"
	"context"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/synth"
)

// startServer runs remedyd on an ephemeral port and returns a client
// plus a stop func that triggers graceful shutdown and waits for run
// to return.
func startServer(t *testing.T, extraArgs ...string) (*serve.Client, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	ready = addrCh
	t.Cleanup(func() { ready = nil })

	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	done := make(chan error, 1)
	go func() { done <- run(ctx, args, io.Discard) }()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("server exited before binding: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never bound")
	}
	var stopOnce sync.Once
	var stopErr error
	stop := func() error {
		stopOnce.Do(func() {
			cancel()
			select {
			case stopErr = <-done:
			case <-time.After(10 * time.Second):
				stopErr = context.DeadlineExceeded
			}
		})
		return stopErr
	}
	t.Cleanup(func() { _ = stop() })
	return serve.NewClient("http://" + addr), stop
}

// TestServeEndToEnd boots the real binary entry point, pushes a
// dataset and an identify job through it over TCP, and shuts it down
// gracefully.
func TestServeEndToEnd(t *testing.T) {
	ctx := context.Background()
	c, stop := startServer(t, "-workers", "2", "-queue", "8")

	d := synth.CompasN(500, 1)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	info, err := c.UploadDataset(ctx, &buf, "compas", "two_year_recid", []string{"age", "race", "sex"})
	if err != nil {
		t.Fatal(err)
	}

	st, err := c.SubmitJob(ctx, serve.JobRequest{Kind: "identify", DatasetID: info.ID})
	if err != nil {
		t.Fatal(err)
	}
	st, err = c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.StateDone {
		t.Fatalf("job = %s (%s)", st.State, st.Error)
	}
	var res serve.IdentifyResult
	if err := c.Result(ctx, st.ID, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) == 0 {
		t.Fatal("no regions identified")
	}

	if err := stop(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	// The listener is really gone.
	if _, err := c.Health(ctx); err == nil {
		t.Fatal("server still answering after shutdown")
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-no-such-flag"}, &buf)
	if err == nil {
		t.Fatal("bad flag must error")
	}
	if !strings.Contains(buf.String(), "Usage") && !strings.Contains(buf.String(), "flag") {
		t.Fatalf("usage not printed: %q", buf.String())
	}
}

func TestRunBadAddr(t *testing.T) {
	err := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, io.Discard)
	if err == nil {
		t.Fatal("unbindable address must error")
	}
}

// TestServeDataDirSurvivesRestart boots remedyd with -data-dir, runs a
// job to completion, restarts on the same directory, and checks the
// dataset and the finished job's result both survived the restart.
func TestServeDataDirSurvivesRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	c, stop := startServer(t, "-workers", "1", "-data-dir", dir)

	d := synth.CompasN(300, 1)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	info, err := c.UploadDataset(ctx, &buf, "compas", "two_year_recid", []string{"age", "race", "sex"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.SubmitJob(ctx, serve.JobRequest{Kind: "identify", DatasetID: info.ID})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.ID, 10*time.Millisecond); err != nil || st.State != serve.StateDone {
		t.Fatalf("first run: job = %+v, err = %v", st, err)
	}
	if err := stop(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}

	c2, stop2 := startServer(t, "-workers", "1", "-data-dir", dir)
	defer stop2() //lint:allow errdiscard second shutdown outcome is not under test
	d2, err := c2.Dataset(ctx, info.ID)
	if err != nil {
		t.Fatalf("dataset lost across restart: %v", err)
	}
	if d2.Rows != info.Rows {
		t.Fatalf("recovered dataset has %d rows, want %d", d2.Rows, info.Rows)
	}
	got, err := c2.Job(ctx, st.ID)
	if err != nil {
		t.Fatalf("job history lost across restart: %v", err)
	}
	if got.State != serve.StateDone {
		t.Fatalf("recovered job state = %s, want done", got.State)
	}
}
