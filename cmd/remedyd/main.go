// Command remedyd serves the fairness-repair pipeline over HTTP/JSON:
// a dataset registry plus an async job engine running identify,
// remedy, train, and audit jobs on a bounded worker pool.
//
// Usage:
//
//	remedyd -addr localhost:8080
//
//	# Register a dataset (streamed, size-capped, content-addressed):
//	curl -X POST --data-binary @compas.csv \
//	    'http://localhost:8080/datasets?target=two_year_recid&protected=age,race,sex'
//
//	# Submit an identify job and poll it:
//	curl -X POST http://localhost:8080/jobs \
//	    -d '{"kind":"identify","dataset_id":"ds-…","tau_c":0.1}'
//	curl http://localhost:8080/jobs/job-000001
//	curl http://localhost:8080/jobs/job-000001/result
//
// GET /healthz reports queue state; GET /metrics serves the obs
// registry snapshot (?format=prom for Prometheus text exposition, and
// /metrics/fleet for the merged fleet view); DELETE /jobs/{id}
// cancels. On SIGINT/SIGTERM the
// server stops accepting work, drains running jobs within
// -drain-timeout, and marks everything else cancelled.
//
// With -data-dir the server is crash-safe: every job state transition
// is journaled to an append-only checksummed log and uploaded datasets
// are spilled to disk before they are acknowledged. On restart with
// the same -data-dir the journal is replayed, finished jobs stay
// queryable, and interrupted jobs are re-queued (resuming identify
// work from the last completed lattice level) until -max-attempts is
// spent. -journal-sync trades append throughput for power-loss
// durability. -snapshot-every bounds the journal: once that many
// records accumulate, the reduced state is frozen into an atomic
// content-addressed snapshot and (with -compact, the default) the
// folded prefix is truncated, so recovery time and disk stay
// proportional to the live tail, not the server's lifetime.
//
// With -node-id and -peers the server joins a replicated fleet
// (requires -data-dir): the leader streams its journal to followers,
// followers forward client traffic to the leader and steal queued
// jobs when idle, and a silent leader is replaced by deterministic
// rank-ordered promotion after -lease ticks of -tick each. See
// README.md "Running a cluster" for a walkthrough:
//
//	remedyd -addr localhost:8081 -data-dir /var/lib/remedyd-a \
//	    -node-id node-a \
//	    -peers node-a=http://localhost:8081,node-b=http://localhost:8082
//
// With -tenants the job queue is multi-tenant: requests carrying an
// X-Remedy-Tenant header are admitted through per-tenant token-bucket
// quotas and dispatched by weighted fair queueing (deficit round
// robin), so one tenant's burst cannot starve another. -default-quota
// governs every tenant not named, and -cache-entries bounds the
// response cache that replays identical identify/train/audit
// submissions without re-running them:
//
//	remedyd -tenants 'team-a=3,team-b=1:0.5:10' -default-quota 1:2
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "remedyd:", err)
		os.Exit(1)
	}
}

// parsePeers decodes the -peers roster ("id=url,id=url"). An empty
// flag is an empty roster; anything malformed is a startup error, not
// a node that silently runs alone.
func parsePeers(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	peers := map[string]string{}
	for _, entry := range strings.Split(s, ",") {
		id, u, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok || id == "" || u == "" {
			return nil, fmt.Errorf("bad -peers entry %q, want id=url", entry)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("duplicate -peers node ID %q", id)
		}
		peers[id] = u
	}
	return peers, nil
}

// parseQuota decodes one tenant quota spec "weight[:rate[:burst]]":
// fair-share weight, token-bucket refill per second (0 = unlimited),
// and bucket size (default ceil(rate)).
func parseQuota(s string) (serve.TenantConfig, error) {
	var tc serve.TenantConfig
	parts := strings.Split(strings.TrimSpace(s), ":")
	if len(parts) > 3 {
		return tc, fmt.Errorf("bad quota %q, want weight[:rate[:burst]]", s)
	}
	if _, err := fmt.Sscanf(parts[0], "%d", &tc.Weight); err != nil || tc.Weight < 1 {
		return tc, fmt.Errorf("bad quota weight %q", parts[0])
	}
	if len(parts) > 1 {
		if _, err := fmt.Sscanf(parts[1], "%g", &tc.Rate); err != nil || tc.Rate < 0 {
			return tc, fmt.Errorf("bad quota rate %q", parts[1])
		}
	}
	if len(parts) > 2 {
		if _, err := fmt.Sscanf(parts[2], "%d", &tc.Burst); err != nil || tc.Burst < 1 {
			return tc, fmt.Errorf("bad quota burst %q", parts[2])
		}
	}
	return tc, nil
}

// parseTenants decodes the -tenants roster
// ("name=weight[:rate[:burst]],..."). An empty flag means every tenant
// rides the default quota.
func parseTenants(s string) (map[string]serve.TenantConfig, error) {
	if s == "" {
		return nil, nil
	}
	tenants := map[string]serve.TenantConfig{}
	for _, entry := range strings.Split(s, ",") {
		name, spec, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok || name == "" || spec == "" {
			return nil, fmt.Errorf("bad -tenants entry %q, want name=weight[:rate[:burst]]", entry)
		}
		if _, dup := tenants[name]; dup {
			return nil, fmt.Errorf("duplicate -tenants name %q", name)
		}
		tc, err := parseQuota(spec)
		if err != nil {
			return nil, fmt.Errorf("-tenants entry %q: %w", entry, err)
		}
		tenants[name] = tc
	}
	return tenants, nil
}

// run builds the server from argv and serves until ctx is cancelled
// (SIGINT/SIGTERM in main; a test cancel in tests). ready, when
// non-nil, receives the bound address once the listener is up — tests
// use it to connect without racing the bind.
var ready chan<- string

func run(ctx context.Context, argv []string, errw io.Writer) error {
	fs := flag.NewFlagSet("remedyd", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		addr         = fs.String("addr", "localhost:8080", "listen address")
		workers      = fs.Int("workers", 4, "job worker pool size")
		queue        = fs.Int("queue", 16, "per-tenant job queue depth (full queue = 429)")
		tenantsFlag  = fs.String("tenants", "", "per-tenant admission as name=weight[:rate[:burst]],… — weighted fair queueing plus token-bucket quotas, keyed by the X-Remedy-Tenant header")
		defQuota     = fs.String("default-quota", "", "quota for the default tenant and any tenant not named in -tenants, as weight[:rate[:burst]] (default: weight 1, unlimited rate)")
		cacheEntries = fs.Int("cache-entries", 128, "response cache capacity: identical identify/train/audit submissions replay without re-running (negative disables)")
		maxDatasets  = fs.Int("max-datasets", 16, "resident dataset capacity (LRU eviction)")
		maxRows      = fs.Int("max-upload-rows", 2_000_000, "per-upload row cap")
		maxBytes     = fs.Int64("max-upload-bytes", 256<<20, "per-upload byte cap")
		jobTimeout   = fs.Duration("job-timeout", 5*time.Minute, "default per-job deadline")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain budget")
		dataDir      = fs.String("data-dir", "", "durability directory: journal job state and spill datasets here, recover on restart (empty = in-memory only)")
		journalSync  = fs.Bool("journal-sync", false, "fsync the job journal after every append (slower, survives power loss)")
		snapEvery    = fs.Uint64("snapshot-every", 0, "write a snapshot once this many records accumulate past the last horizon (0 disables snapshots)")
		compact      = fs.Bool("compact", true, "truncate the journal prefix a snapshot has folded (with -snapshot-every); false keeps the full log and uses snapshots only to speed recovery")
		maxAttempts  = fs.Int("max-attempts", 3, "run budget per job across restarts; an interrupted job past it is marked failed")
		nodeID       = fs.String("node-id", "", "this node's ID in a replicated fleet (requires -peers and -data-dir)")
		peersFlag    = fs.String("peers", "", "fleet roster as id=url,id=url — must include this node's own entry")
		lease        = fs.Int("lease", 3, "leader lease in ticks; a follower promotes after a rank-staggered multiple of this much silence")
		tick         = fs.Duration("tick", 500*time.Millisecond, "cluster tick interval (replication, lease, and steal cadence)")
		stealMax     = fs.Int("steal-max", 1, "stolen jobs a follower runs concurrently (negative disables work stealing)")
		slowJob      = fs.Duration("slow-job", 30*time.Second, "warn-log jobs slower than this with per-level span timings (0 disables)")
		verbose      = fs.Bool("v", false, "info-level structured logging to stderr")
		veryVerb     = fs.Bool("vv", false, "debug-level structured logging to stderr")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	peers, err := parsePeers(*peersFlag)
	if err != nil {
		return err
	}
	tenants, err := parseTenants(*tenantsFlag)
	if err != nil {
		return err
	}
	var defaultQuota serve.TenantConfig
	if *defQuota != "" {
		if defaultQuota, err = parseQuota(*defQuota); err != nil {
			return fmt.Errorf("-default-quota: %w", err)
		}
	}
	if *nodeID != "" {
		if *dataDir == "" {
			return errors.New("-node-id requires -data-dir: a fleet member must hold a durable journal")
		}
		if _, ok := peers[*nodeID]; !ok {
			return fmt.Errorf("-peers must include this node's own entry %q", *nodeID)
		}
	} else if len(peers) > 0 {
		return errors.New("-peers requires -node-id")
	}

	level := obs.LevelWarn
	if *verbose {
		level = obs.LevelInfo
	}
	if *veryVerb {
		level = obs.LevelDebug
	}
	lg := obs.NewLogger(errw, level)

	cfg := serve.Config{
		MaxDatasets:      *maxDatasets,
		MaxUploadRows:    *maxRows,
		MaxUploadBytes:   *maxBytes,
		Workers:          *workers,
		QueueDepth:       *queue,
		Tenants:          tenants,
		DefaultQuota:     defaultQuota,
		CacheEntries:     *cacheEntries,
		JobTimeout:       *jobTimeout,
		MaxAttempts:      *maxAttempts,
		NodeID:           *nodeID,
		SlowJobThreshold: *slowJob,
		Logger:           lg,
	}
	var srv *serve.Server
	var node *cluster.Node
	// compactStore drives the standalone compaction ticker: only a
	// durable single-node server needs one (fleet members compact from
	// their cluster tick).
	var compactStore *durable.Store
	if *dataDir != "" {
		store, serr := durable.Open(ctx, *dataDir, *journalSync)
		if serr != nil {
			return fmt.Errorf("open data dir %s: %w", *dataDir, serr)
		}
		defer func() {
			if cerr := store.Close(); cerr != nil {
				lg.Error("data dir close failed", "err", cerr)
			}
		}()
		if *snapEvery > 0 {
			store.SetCompaction(durable.CompactionPolicy{Every: *snapEvery, Truncate: *compact})
			lg.Info("compaction enabled", "snapshot-every", *snapEvery, "truncate", *compact)
		}
		if *nodeID != "" {
			// Fleet member: start as a standby follower (no job
			// re-queueing; the fleet's leader owns the queue) and let the
			// cluster node decide the role.
			srv, serr = serve.NewFollower(ctx, cfg, store)
			if serr != nil {
				return fmt.Errorf("recover from %s: %w", *dataDir, serr)
			}
			node, serr = cluster.New(ctx, cluster.Config{
				ID:         *nodeID,
				Peers:      peers,
				LeaseTicks: *lease,
				StealMax:   *stealMax,
				Logger:     lg,
			}, srv)
			if serr != nil {
				return fmt.Errorf("join fleet: %w", serr)
			}
			role, term, _ := node.Role()
			lg.Info("cluster enabled", "node", *nodeID, "peers", len(peers),
				"role", role, "term", term, "lease-ticks", *lease, "tick", *tick)
		} else {
			srv, serr = serve.NewDurable(ctx, cfg, store)
			if serr != nil {
				return fmt.Errorf("recover from %s: %w", *dataDir, serr)
			}
			if *snapEvery > 0 {
				compactStore = store
			}
		}
		lg.Info("durability enabled", "data-dir", *dataDir,
			"journal-sync", *journalSync, "max-attempts", *maxAttempts)
	} else {
		srv = serve.New(cfg)
	}

	handler := http.Handler(srv.Handler())
	if node != nil {
		mux := http.NewServeMux()
		mux.Handle("/cluster/", node.Handler())
		mux.Handle("/", srv.Handler())
		handler = mux
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: handler}
	lg.Info("remedyd serving", "addr", ln.Addr().String(),
		"workers", *workers, "queue", *queue)
	fmt.Fprintf(errw, "remedyd listening on %s\n", ln.Addr().String())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	//lint:allow goroleak Serve returns when hs.Shutdown runs below; the buffered send can never block
	go func() { serveErr <- hs.Serve(ln) }()

	// The cluster heartbeat: every tick the node replicates, renews its
	// lease (leader) or counts silence toward promotion (follower), and
	// steals work when idle. Stops with ctx so shutdown sees no new
	// ticks.
	tickDone := make(chan struct{})
	switch {
	case node != nil:
		go func() {
			defer close(tickDone)
			tk := time.NewTicker(*tick)
			defer tk.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tk.C:
					node.Tick(ctx)
				}
			}
		}()
	case compactStore != nil:
		// Standalone durable server: the same cadence the cluster tick
		// gives fleet members, but only the compaction check.
		go func() {
			defer close(tickDone)
			tk := time.NewTicker(*tick)
			defer tk.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tk.C:
					if _, cerr := compactStore.MaybeCompact(obs.WithLogger(ctx, lg)); cerr != nil {
						lg.Error("compaction failed", "err", cerr)
					}
				}
			}
		}()
	default:
		close(tickDone)
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop ticking and drain stolen runs, then stop
	// intake and drain local jobs within the budget, then close the
	// HTTP server (bounded by the same budget).
	lg.Info("shutting down", "drain", *drainTimeout)
	<-tickDone
	if node != nil {
		node.Close()
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Shutdown(drainCtx)
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if drainErr != nil {
		fmt.Fprintf(errw, "remedyd: drain deadline hit, running jobs cancelled\n")
	}
	lg.Info("shutdown complete")
	return nil
}
