// Command datagen emits the synthetic evaluation datasets as CSV files
// so they can be inspected, versioned, or fed back through remedyctl.
//
// Usage:
//
//	datagen -dataset propublica -out compas.csv
//	datagen -dataset adult -n 10000 -seed 7 -out adult.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/synth"
)

func main() {
	name := flag.String("dataset", "propublica", "dataset: propublica, adult, or lawschool")
	n := flag.Int("n", 0, "row count (0 = the paper's size)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "output CSV path (default stdout)")
	describe := flag.Bool("describe", false, "print per-attribute distributions instead of CSV")
	flag.Parse()

	var d *dataset.Dataset
	switch *name {
	case "propublica":
		size := synth.CompasSize
		if *n > 0 {
			size = *n
		}
		d = synth.CompasN(size, *seed)
	case "adult":
		size := synth.AdultSize
		if *n > 0 {
			size = *n
		}
		d = synth.AdultN(size, *seed)
	case "lawschool":
		size := synth.LawSchoolSize
		if *n > 0 {
			size = *n
		}
		d = synth.LawSchoolN(size, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *name)
		os.Exit(2)
	}
	if *describe {
		if err := d.WriteDescription(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *out == "" {
		if err := d.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := d.WriteCSVFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %s\n", *out, d)
}
