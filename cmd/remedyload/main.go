// Command remedyload is the deterministic load harness for remedyd:
// it synthesizes a dataset, fans out virtual clients across a tenant
// mix, drives the server through the retrying client, and reports
// per-tenant latency percentiles, throughput, error taxonomies, and a
// weighted-fairness measurement. The report's deterministic half is
// byte-identical across same-seed runs, so a LOAD_*.json artifact
// diffs cleanly between revisions.
//
// Usage:
//
//	# Hammer a running server with a 3:1 tenant mix:
//	remedyload -serve-url http://localhost:8080 \
//	    -tenants 'team-a=3:8:20,team-b=1:4:10' -seed 42 -out LOAD.json
//
//	# Self-contained benchmark (boots an in-process remedyd):
//	remedyload -workers 4 -queue 64 -seed 42
//
// Each -tenants entry is name=weight:clients:jobs — the server-side
// fair-share weight, the number of concurrent virtual clients, and the
// jobs each client submits. Without -serve-url the harness boots an
// in-process server whose tenant weights mirror the mix, which is how
// `make load-check` runs it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "remedyload:", err)
		os.Exit(1)
	}
}

// parseMix decodes the -tenants flag ("name=weight:clients:jobs,…").
func parseMix(s string) ([]load.Tenant, error) {
	var mix []load.Tenant
	seen := map[string]bool{}
	for _, entry := range strings.Split(s, ",") {
		name, spec, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -tenants entry %q, want name=weight:clients:jobs", entry)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate tenant %q", name)
		}
		seen[name] = true
		t := load.Tenant{Name: name}
		if n, err := fmt.Sscanf(spec, "%d:%d:%d", &t.Weight, &t.Clients, &t.Jobs); err != nil || n != 3 {
			return nil, fmt.Errorf("bad -tenants spec %q, want weight:clients:jobs", spec)
		}
		if t.Weight < 1 || t.Clients < 1 || t.Jobs < 1 {
			return nil, fmt.Errorf("-tenants entry %q: all fields must be >= 1", entry)
		}
		mix = append(mix, t)
	}
	return mix, nil
}

func run(ctx context.Context, argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("remedyload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		serveURL = fs.String("serve-url", "", "remedyd to drive (empty: boot an in-process server)")
		seed     = fs.Int64("seed", 1, "seed for the dataset, every client schedule, and all retry jitter")
		mixFlag  = fs.String("tenants", "default=1:4:4", "load mix as name=weight:clients:jobs,…")
		rows     = fs.Int("rows", 400, "synthetic dataset rows")
		kind     = fs.String("kind", "identify", "job kind to submit")
		repeat   = fs.Bool("repeat", true, "resubmit the first request verbatim afterward and require a response-cache hit")
		out      = fs.String("out", "", "write the machine-readable report (JSON) here")
		workers  = fs.Int("workers", 4, "in-process server: worker pool size")
		queue    = fs.Int("queue", 64, "in-process server: per-tenant queue depth")
		cacheCap = fs.Int("cache-entries", 128, "in-process server: response cache capacity")
		verbose  = fs.Bool("v", false, "info-level progress logging to stderr")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}
	level := obs.LevelWarn
	if *verbose {
		level = obs.LevelInfo
	}
	lg := obs.NewLogger(stderr, level)

	baseURL := *serveURL
	if baseURL == "" {
		// Self-contained mode: an in-process remedyd whose tenant
		// weights mirror the load mix.
		tenants := map[string]serve.TenantConfig{}
		for _, t := range mix {
			tenants[t.Name] = serve.TenantConfig{Weight: t.Weight}
		}
		srv := serve.New(serve.Config{
			Workers: *workers, QueueDepth: *queue,
			CacheEntries: *cacheCap, Tenants: tenants, Logger: lg,
		})
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			return lerr
		}
		hs := &http.Server{Handler: srv.Handler()}
		//lint:allow goroleak Serve returns when the deferred hs.Shutdown below runs
		go func() {
			if serr := hs.Serve(ln); serr != nil && serr != http.ErrServerClosed {
				lg.Error("in-process server", "err", serr)
			}
		}()
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if serr := srv.Shutdown(sctx); serr != nil {
				lg.Error("in-process shutdown", "err", serr)
			}
			if herr := hs.Shutdown(sctx); herr != nil {
				lg.Error("in-process http shutdown", "err", herr)
			}
		}()
		baseURL = "http://" + ln.Addr().String()
		lg.Info("in-process server up", "url", baseURL, "workers", *workers)
	}

	rep, err := load.Run(ctx, load.Config{
		BaseURL:         baseURL,
		Seed:            *seed,
		Tenants:         mix,
		Rows:            *rows,
		Kind:            *kind,
		RepeatIdentical: *repeat,
		Logger:          lg,
	})
	if err != nil {
		return err
	}
	if err := rep.Table().Render(stdout); err != nil {
		return err
	}
	det := rep.Deterministic
	fmt.Fprintf(stdout, "lost=%d duplicated=%d cache_repeat_hit=%v max_fairness_dev=%.3f\n",
		det.Lost, det.Duplicated, det.CacheRepeatHit, rep.Observed.MaxFairnessDeviation)
	if *out != "" {
		b, merr := json.MarshalIndent(rep, "", "  ")
		if merr != nil {
			return merr
		}
		if werr := os.WriteFile(*out, append(b, '\n'), 0o644); werr != nil {
			return werr
		}
		fmt.Fprintf(stdout, "report written to %s\n", *out)
	}
	if det.Lost > 0 || det.Duplicated > 0 {
		return fmt.Errorf("accounting violated: %d lost, %d duplicated", det.Lost, det.Duplicated)
	}
	if *repeat && !det.CacheRepeatHit {
		return fmt.Errorf("verbatim resubmission was not served from the response cache")
	}
	return nil
}
