package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/load"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("a=3:2:10,b=1:1:5")
	if err != nil {
		t.Fatal(err)
	}
	want := []load.Tenant{
		{Name: "a", Weight: 3, Clients: 2, Jobs: 10},
		{Name: "b", Weight: 1, Clients: 1, Jobs: 5},
	}
	if len(mix) != len(want) {
		t.Fatalf("mix = %+v", mix)
	}
	for i := range want {
		if mix[i] != want[i] {
			t.Fatalf("mix[%d] = %+v, want %+v", i, mix[i], want[i])
		}
	}
	for _, bad := range []string{"", "a", "a=1:2", "a=0:1:1", "a=1:1:1,a=1:1:1", "a=x:y:z"} {
		if _, err := parseMix(bad); err == nil {
			t.Fatalf("parseMix(%q) should fail", bad)
		}
	}
}

// TestRunInProcess runs the full harness against the self-booted
// server and checks the report lands on disk with both halves intact.
func TestRunInProcess(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "LOAD.json")
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-seed", "11", "-rows", "200",
		"-tenants", "a=2:2:3,b=1:1:2",
		"-workers", "2", "-out", outPath,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "cache_repeat_hit=true") {
		t.Fatalf("stdout missing cache probe result:\n%s", stdout.String())
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep load.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Deterministic.Outcomes); got != 2*3+1*2 {
		t.Fatalf("outcomes = %d, want 8", got)
	}
	if rep.Deterministic.Lost != 0 || !rep.Deterministic.CacheRepeatHit {
		t.Fatalf("deterministic section = %+v", rep.Deterministic)
	}
	if len(rep.Observed.Tenants) != 2 {
		t.Fatalf("observed tenants = %+v", rep.Observed.Tenants)
	}
}

func TestRunBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"-tenants", "nope"}, &stdout, &stderr); err == nil {
		t.Fatal("bad -tenants must fail")
	}
}
