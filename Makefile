GO ?= go

.PHONY: all build vet test race check lint lint-graph lint-report panicgate baseline obs-check serve-check durable-check cluster-check chaos-check obs-fleet-check load-check bench fuzz

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the full remedylint suite (see cmd/remedylint): the
# machine-checked form of the repo's correctness contracts, including
# the interprocedural concurrency/durability analyzers (lockorder,
# heldcall, goroleak, journalgate). New findings fail; sanctioned
# exceptions carry //lint:allow comments (the baseline is empty).
# -timings prints per-analyzer wall-clock cost so regressions in the
# analysis itself are visible.
lint:
	$(GO) run ./cmd/remedylint -timings ./...

# lint-graph dumps the interprocedural evidence the concurrency
# analyzers reason from: the call-graph summary, every lock class, and
# the observed lock-order edges with witness sites.
lint-graph:
	$(GO) run ./cmd/remedylint -graph ./...

# panicgate is the narrow no-panic gate (a remedylint subset kept as
# its own target for habit and for fast pre-commit runs). The library's
# error contract is sentinel errors and context cancellation; panics
# are reserved for tests.
panicgate:
	$(GO) run ./cmd/remedylint -analyzers panicgate ./...

# baseline regenerates .remedylint-baseline.json from current findings.
# Only for deliberately grandfathering new debt; prefer fixing or
# //lint:allow-ing findings instead.
baseline:
	$(GO) run ./cmd/remedylint -write-baseline ./...

# lint-report refreshes the committed machine-readable report, the
# artifact format downstream tooling consumes.
lint-report:
	$(GO) run ./cmd/remedylint -json ./... > remedylint-report.json

# obs-check vets and race-tests the observability layer in isolation:
# its lock-free counters and span bookkeeping are the code most likely
# to regress under concurrency, so they get a dedicated fast gate.
obs-check:
	$(GO) vet ./internal/obs/...
	$(GO) test -race ./internal/obs/...

# serve-check vets and race-tests the remedyd service layer (registry,
# job engine, handlers, client) and the binary's end-to-end test: the
# worker pool, cancellation, and shutdown paths are all
# concurrency-sensitive, so they run under the race detector on every
# check.
serve-check:
	$(GO) vet ./internal/serve/... ./cmd/remedyd/...
	$(GO) test -race ./internal/serve/... ./cmd/remedyd/...

# durable-check gates the crash-safety layer: the journal/spill
# package's unit and fuzz-seed tests, and the serve-level chaos tests
# (crash mid-identify, crash mid-remedy, recovery budgets), all under
# the race detector. These are the tests that catch a lost or
# duplicated job.
durable-check:
	$(GO) vet ./internal/durable/...
	$(GO) test -race ./internal/durable/...
	$(GO) test -race -count=1 -run 'Durable|Crash|Recovery|Restart|Retry|Circuit' \
	    ./internal/serve/ ./cmd/remedyd/

# cluster-check gates the fleet layer: replication, rank-ordered
# leader promotion, term fencing, dataset sharding, and work stealing,
# all under the race detector — headlined by the chaos failover test
# (leader killed mid-identify via the fault registry; the fleet's IBS
# must be byte-identical to a single-node run, with the job completing
# exactly once and no goroutine leaked after drain) and the cmd-level
# two-real-nodes-over-TCP failover test.
cluster-check:
	$(GO) vet ./internal/cluster/...
	$(GO) test -race -count=1 ./internal/cluster/
	$(GO) test -race -count=1 -run 'Cluster' ./cmd/remedyd/

# chaos-check gates the fault-injection suite under the race
# detector: the in-process kill-switch chaos tests (leader killed
# mid-append) plus the network-fault layer's tests — deterministic
# drop/dup/delay/partition schedules, symmetric partition → heal →
# byte-identical journals, asymmetric partition during a steal,
# compaction racing replication, and the headline live-rejoin test (a
# deposed node behind the compaction horizon rejoins through a lossy
# link via snapshot install, no restart, fleet IBS byte-identical to a
# single-node run).
chaos-check:
	$(GO) test -race -count=1 ./internal/faults/
	$(GO) test -race -count=1 -run 'Chaos|Deposed|NetFaults' \
	    ./internal/cluster/ ./internal/serve/

# obs-fleet-check gates fleet observability: a three-node fleet steals
# a job and the test asserts the leader's stitched trace carries spans
# from every participating node ID under a deterministic trace ID, and
# that /metrics/fleet's merged counters equal the sum of the per-node
# registries — plus the lag/event-log surfaces — all under the race
# detector.
obs-fleet-check:
	$(GO) test -race -count=1 -run 'ObsFleet' ./internal/cluster/

# load-check gates the load harness and the multi-tenant admission
# layer under the race detector: deficit-round-robin fairness (no
# starvation, shares within 20% of weights), per-tenant quotas and
# derived Retry-After, response-cache byte-identity, and the harness's
# own acceptance test — two same-seed runs against fresh servers must
# produce byte-identical deterministic reports with zero jobs lost or
# duplicated and at least one cache hit.
load-check:
	$(GO) vet ./internal/load/... ./cmd/remedyload/...
	$(GO) test -race -count=1 ./internal/load/ ./cmd/remedyload/
	$(GO) test -race -count=1 \
	    -run 'FairQueue|RetryAfter|Tenant|Cache|ClientRetry' ./internal/serve/

# bench regenerates the committed BENCH_*.json perf artifact (see
# EXPERIMENTS.md "Benchmark trajectory"). Usage: make bench OUT=BENCH_7.json
OUT ?= BENCH_dev.json
bench:
	sh scripts/bench.sh $(OUT)

fuzz:
	$(GO) test ./internal/dataset/ -fuzz FuzzReadCSV -fuzztime 30s
	$(GO) test ./internal/durable/ -fuzz FuzzJournalReplay -fuzztime 30s

check: build vet lint obs-check serve-check durable-check cluster-check chaos-check obs-fleet-check load-check race
	@echo "all checks passed"
