GO ?= go

.PHONY: all build vet test race check panicgate obs-check serve-check fuzz

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# panicgate fails if any panic() call appears in non-test library code.
# The library's error contract is sentinel errors and context
# cancellation; panics are reserved for tests.
panicgate:
	@bad=$$(grep -rn "panic(" --include="*.go" internal/ cmd/ examples/ | grep -v "_test.go" || true); \
	if [ -n "$$bad" ]; then \
		echo "panic() in non-test code:"; echo "$$bad"; exit 1; \
	fi; \
	echo "panicgate: ok"

# obs-check vets and race-tests the observability layer in isolation:
# its lock-free counters and span bookkeeping are the code most likely
# to regress under concurrency, so they get a dedicated fast gate.
obs-check:
	$(GO) vet ./internal/obs/...
	$(GO) test -race ./internal/obs/...

# serve-check vets and race-tests the remedyd service layer (registry,
# job engine, handlers, client) and the binary's end-to-end test: the
# worker pool, cancellation, and shutdown paths are all
# concurrency-sensitive, so they run under the race detector on every
# check.
serve-check:
	$(GO) vet ./internal/serve/... ./cmd/remedyd/...
	$(GO) test -race ./internal/serve/... ./cmd/remedyd/...

fuzz:
	$(GO) test ./internal/dataset/ -fuzz FuzzReadCSV -fuzztime 30s

check: build vet panicgate obs-check serve-check race
	@echo "all checks passed"
