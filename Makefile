GO ?= go

.PHONY: all build vet test race check lint lint-report panicgate baseline obs-check serve-check fuzz

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the full remedylint suite (see cmd/remedylint): the
# machine-checked form of the repo's correctness contracts. New
# findings fail; grandfathered ones live in .remedylint-baseline.json
# and sanctioned exceptions carry //lint:allow comments.
lint:
	$(GO) run ./cmd/remedylint ./...

# panicgate is the narrow no-panic gate (a remedylint subset kept as
# its own target for habit and for fast pre-commit runs). The library's
# error contract is sentinel errors and context cancellation; panics
# are reserved for tests.
panicgate:
	$(GO) run ./cmd/remedylint -analyzers panicgate ./...

# baseline regenerates .remedylint-baseline.json from current findings.
# Only for deliberately grandfathering new debt; prefer fixing or
# //lint:allow-ing findings instead.
baseline:
	$(GO) run ./cmd/remedylint -write-baseline ./...

# lint-report refreshes the committed machine-readable report, the
# artifact format downstream tooling consumes.
lint-report:
	$(GO) run ./cmd/remedylint -json ./... > remedylint-report.json

# obs-check vets and race-tests the observability layer in isolation:
# its lock-free counters and span bookkeeping are the code most likely
# to regress under concurrency, so they get a dedicated fast gate.
obs-check:
	$(GO) vet ./internal/obs/...
	$(GO) test -race ./internal/obs/...

# serve-check vets and race-tests the remedyd service layer (registry,
# job engine, handlers, client) and the binary's end-to-end test: the
# worker pool, cancellation, and shutdown paths are all
# concurrency-sensitive, so they run under the race detector on every
# check.
serve-check:
	$(GO) vet ./internal/serve/... ./cmd/remedyd/...
	$(GO) test -race ./internal/serve/... ./cmd/remedyd/...

fuzz:
	$(GO) test ./internal/dataset/ -fuzz FuzzReadCSV -fuzztime 30s

check: build vet lint obs-check serve-check race
	@echo "all checks passed"
